"""Mapping results: which thread runs on which PU.

A :class:`Mapping` is the output of every placement policy (TreeMatch or
a baseline): an array ``pu_of[t]`` giving the PU *os_index* assigned to
thread *t*, plus optional per-thread labels and, for control threads
under the hyperthread-reservation strategy, a parallel control map.

Oversubscribed mappings are legal: several threads may share a PU.  The
binder and the simulator both consume this object.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.topology.tree import Topology
from repro.util.validate import ValidationError


@dataclass
class Mapping:
    """An assignment of threads to PUs.

    Attributes
    ----------
    pu_of:
        ``pu_of[t]`` = PU os_index for thread *t*; ``-1`` means unbound
        (left to the OS scheduler).
    labels:
        Optional thread names, parallel to *pu_of*.
    policy:
        Name of the policy that produced the mapping (for reports).
    """

    pu_of: tuple[int, ...]
    labels: tuple[str, ...] = ()
    policy: str = ""

    def __post_init__(self) -> None:
        self.pu_of = tuple(int(p) for p in self.pu_of)
        if self.labels and len(self.labels) != len(self.pu_of):
            raise ValidationError(
                f"{len(self.labels)} labels for {len(self.pu_of)} threads"
            )
        if not self.labels:
            self.labels = tuple(f"t{i}" for i in range(len(self.pu_of)))
        for t, p in enumerate(self.pu_of):
            if p < -1:
                raise ValidationError(f"thread {t}: invalid PU {p}")

    # -- queries -------------------------------------------------------------

    @property
    def n_threads(self) -> int:
        return len(self.pu_of)

    def pu(self, thread: int) -> int:
        """PU os_index of *thread* (-1 if unbound)."""
        return self.pu_of[thread]

    def is_bound(self, thread: int) -> bool:
        return self.pu_of[thread] >= 0

    def bound_fraction(self) -> float:
        """Fraction of threads that received a PU."""
        if not self.pu_of:
            return 0.0
        return sum(1 for p in self.pu_of if p >= 0) / len(self.pu_of)

    def threads_on(self, pu_os_index: int) -> list[int]:
        """Threads assigned to a given PU."""
        return [t for t, p in enumerate(self.pu_of) if p == pu_os_index]

    def occupancy(self) -> Counter:
        """PU os_index -> number of threads mapped there."""
        return Counter(p for p in self.pu_of if p >= 0)

    def max_load(self) -> int:
        """Largest number of threads sharing one PU (0 if all unbound)."""
        occ = self.occupancy()
        return max(occ.values()) if occ else 0

    def validate_against(self, topo: Topology) -> None:
        """Check every bound PU exists in *topo*; raise otherwise."""
        valid = {pu.os_index for pu in topo.pus()}
        for t, p in enumerate(self.pu_of):
            if p >= 0 and p not in valid:
                raise ValidationError(f"thread {t} mapped to unknown PU {p}")

    # -- transforms ---------------------------------------------------------

    def restricted(self, n_threads: int) -> "Mapping":
        """Keep only the first *n_threads* entries (drop padding/control)."""
        if not 0 <= n_threads <= len(self.pu_of):
            raise ValidationError(
                f"cannot restrict mapping of {len(self.pu_of)} threads to {n_threads}"
            )
        return Mapping(
            self.pu_of[:n_threads], self.labels[:n_threads], policy=self.policy
        )

    def as_array(self) -> np.ndarray:
        return np.asarray(self.pu_of, dtype=np.int64)

    # -- IO (rankfile-style) -------------------------------------------------

    def save(self, path) -> None:
        """Write as a rankfile: one ``label <tab> pu`` line per thread
        (``unbound`` for -1), with the policy in a header comment."""
        from pathlib import Path

        lines = [f"# repro-mapping policy={self.policy or 'unknown'}"]
        for t in range(self.n_threads):
            pu = self.pu_of[t]
            lines.append(f"{self.labels[t]}\t{pu if pu >= 0 else 'unbound'}")
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path) -> "Mapping":
        """Read a rankfile produced by :meth:`save`."""
        from pathlib import Path

        policy = ""
        labels: list[str] = []
        pus: list[int] = []
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "policy=" in line:
                    policy = line.split("policy=", 1)[1].strip()
                continue
            try:
                label, pu_s = line.rsplit("\t", 1)
            except ValueError:
                raise ValidationError(f"malformed rankfile line: {line!r}") from None
            labels.append(label)
            pus.append(-1 if pu_s == "unbound" else int(pu_s))
        return cls(tuple(pus), tuple(labels), policy=policy)

    def __repr__(self) -> str:
        return (
            f"<Mapping {self.policy or 'unnamed'}: {self.n_threads} threads, "
            f"{self.bound_fraction():.0%} bound, max_load={self.max_load()}>"
        )


def map_groups(
    group_hierarchy: Sequence[Sequence[Sequence[int]]],
    n_entities: int,
) -> list[int]:
    """``MapGroups``: turn the per-level group hierarchy into leaf slots.

    Parameters
    ----------
    group_hierarchy:
        ``group_hierarchy[k]`` is the list of groups formed at the k-th
        grouping step, deepest level first (the order Algorithm 1 builds
        them).  Groups at step 0 contain original entity ids; groups at
        step k > 0 contain indices of groups from step k-1.
    n_entities:
        Number of original (padded) entities.

    Returns
    -------
    ``slot_of[e]`` — the leaf slot (DFS order) of each original entity.
    """
    if not group_hierarchy:
        # No internal levels: entities map to slots identically.
        return list(range(n_entities))

    # Expand from the top: the groups of the last step, in order, occupy
    # the subtrees of the root left-to-right.
    def expand(step: int, group_index: int) -> list[int]:
        group = group_hierarchy[step][group_index]
        if step == 0:
            return list(group)
        out: list[int] = []
        for sub in group:
            out.extend(expand(step - 1, sub))
        return out

    top = len(group_hierarchy) - 1
    order: list[int] = []
    for gi in range(len(group_hierarchy[top])):
        order.extend(expand(top, gi))
    if sorted(order) != list(range(n_entities)):
        raise ValidationError(
            "group hierarchy does not enumerate every entity exactly once"
        )
    slot_of = [0] * n_entities
    for slot, entity in enumerate(order):
        slot_of[entity] = slot
    return slot_of
