"""Parla-style dependency-graph frontend over the ORWL runtime.

``repro.tasks`` lets a workload be written as a DAG — tasks spawned
into :class:`TaskSpace` grids, declaring the data :class:`Region`\\ s
they read and write plus explicit control dependencies — and compiles
it down to the existing ORWL locations/operations model
(:mod:`repro.tasks.compile`), so DAG programs run unmodified on the
batched engine, flow through the same placement pipeline, and keep the
determinism contract (bit-identical across engine modes, worker
counts, and warm-cache reruns).

Quickstart::

    from repro.tasks import TaskGraph, run_graph

    g = TaskGraph("pipe")
    a = g.region("a", nbytes=1 << 20)
    T = g.space("T")
    g.spawn(T[0], flops=1e9, writes=[a])
    g.spawn(T[1], flops=1e9, reads=[a])          # RAW edge, 1 MiB
    res = run_graph(g, policy="treematch", record_times=True)
    assert res.schedule_ok(g)

The three shipped workload families (tiled Cholesky, level-synchronous
BFS, recursive divide-and-conquer) live in :mod:`repro.kernels`; the
placement-on-DAGs experiment E7 is :mod:`repro.experiments.dag`.
"""

from repro.tasks.compile import (
    TaskTimes,
    compile_graph,
    dag_matrix,
    edge_location_name,
)
from repro.tasks.graph import (
    Region,
    TaskGraph,
    TaskNode,
    TaskRef,
    TaskSpace,
    topological_check,
)
from repro.tasks.run import GraphRunResult, run_graph

__all__ = [
    "GraphRunResult",
    "Region",
    "TaskGraph",
    "TaskNode",
    "TaskRef",
    "TaskSpace",
    "TaskTimes",
    "compile_graph",
    "dag_matrix",
    "edge_location_name",
    "run_graph",
    "topological_check",
]
