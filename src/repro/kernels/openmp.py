"""OpenMP-like fork-join comparator ("of equivalent abstraction").

The paper compares ORWL against a straightforward OpenMP port of LK23:
a ``parallel for`` over row strips with an implicit global barrier per
sweep and no topology awareness.  This module models exactly that on
the simulated machine:

* the matrix is initialized by the master thread, so **first-touch**
  places every page on the master's NUMA node — each sweep, every
  worker streams its whole strip from that one node (the classic
  scaling pathology on big NUMA boxes);
* workers are **unbound** (a topology-unaware runtime), so the
  OS-scheduler model migrates them like any other unbound thread;
* each sweep ends in a **global tree barrier** whose completion waits
  for the slowest worker and costs ``log2(P)`` hops of machine-level
  latency — fork-join cannot overlap a fast worker's next sweep with a
  straggler, unlike ORWL's point-to-point FIFO synchronization.

An optional ``bound=True`` mode binds workers compactly and first-touches
in parallel (what ``OMP_PROC_BIND`` + a first-touch init loop would buy),
used by ablation benches to separate the barrier cost from the memory
placement cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.kernels.lk23 import FLOPS_PER_POINT
from repro.simulate.engine import SimEvent
from repro.simulate.machine import Machine
from repro.simulate.metrics import MachineMetrics
from repro.simulate.syscalls import Compute, ReceiveFromNode, Wait
from repro.util.validate import ValidationError


@dataclass(frozen=True)
class OpenMpConfig:
    """The fork-join LK23 run parameters."""

    n: int = 16384
    n_threads: int = 8
    iterations: int = 100
    element_bytes: int = 8
    flops_per_point: float = FLOPS_PER_POINT
    stream_fraction: float = 1.0
    #: per-hop latency of the tree barrier (machine-level message).
    barrier_hop_latency: float = 400e-9
    #: bind workers compactly + parallel first-touch (ablation mode).
    bound: bool = False
    #: where the matrix pages live: "master" (first-touch by the master
    #: thread — the naive default the paper's comparator has),
    #: "interleave" (numactl --interleave: pages round-robin across all
    #: nodes), or "local" (parallel first-touch; implied by bound=True).
    memory_policy: str = "master"

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise ValidationError("n_threads must be > 0")
        if self.iterations <= 0:
            raise ValidationError("iterations must be > 0")
        if self.n_threads > self.n:
            raise ValidationError(
                f"{self.n_threads} strips is finer than {self.n} rows"
            )
        if not 0.0 <= self.stream_fraction <= 1.0:
            raise ValidationError("stream_fraction must be in [0, 1]")
        if self.memory_policy not in ("master", "interleave", "local"):
            raise ValidationError(
                f"memory_policy must be 'master', 'interleave' or 'local', "
                f"got {self.memory_policy!r}"
            )


@dataclass
class OpenMpResult:
    """Outcome of a fork-join run."""

    time: float
    metrics: MachineMetrics
    n_threads: int


class _Barrier:
    """A reusable counting barrier on the simulation engine.

    The last arriver fires the generation's event after the tree-barrier
    propagation delay; everyone else parks on it.
    """

    def __init__(self, machine: Machine, parties: int, hop_latency: float) -> None:
        self._machine = machine
        self._parties = parties
        self._count = 0
        self._release_delay = (
            math.ceil(math.log2(parties)) * hop_latency if parties > 1 else 0.0
        )
        self._event = machine.new_event("barrier")

    def arrive(self) -> SimEvent:
        """Register arrival; returns the generation event to wait on.

        The last arriver fires it with the tree-propagation delay; the
        event's release-time semantics make the releaser pay the same
        delay when it waits on the (already fired) event.
        """
        self._count += 1
        ev = self._event
        if self._count == self._parties:
            self._count = 0
            self._event = self._machine.new_event("barrier")
            ev.fire(delay=self._release_delay)
        return ev


def run_openmp_lk23(
    machine: Machine,
    cfg: OpenMpConfig,
) -> OpenMpResult:
    """Execute the fork-join LK23 on *machine*; returns simulated time.

    One strip of ``n / n_threads`` rows per worker (static schedule).
    """
    p = cfg.n_threads
    if p > machine.topo.nb_pus and cfg.bound:
        raise ValidationError(
            f"{p} bound workers on a {machine.topo.nb_pus}-PU machine"
        )
    strip_points = (cfg.n / p) * cfg.n  # average strip (static schedule)
    strip_bytes = strip_points * cfg.element_bytes * cfg.stream_fraction
    strip_flops = strip_points * cfg.flops_per_point
    barrier = _Barrier(machine, p, cfg.barrier_hop_latency)

    pus = machine.topo.pus()
    tids = []
    for w in range(p):
        bound_pu = pus[w % len(pus)].os_index if cfg.bound else None
        tids.append(machine.add_thread(f"omp{w}", bound_pu_os=bound_pu))

    from repro.topology.objects import ObjType

    n_nodes = max(machine.topo.nbobjs_by_type(ObjType.NUMANODE), 1)
    policy = "local" if cfg.bound else cfg.memory_policy

    def worker_body(w: int):
        def body():
            if policy == "local":
                homes = [machine.node_of_thread(tids[w])]
            elif policy == "interleave":
                homes = list(range(n_nodes))  # pages round-robin
            else:  # master first-touch
                homes = [machine.node_of_thread(tids[0])]
            share = strip_bytes / len(homes)
            for _ in range(cfg.iterations):
                if strip_bytes > 0:
                    for home in homes:
                        if home >= 0:
                            yield ReceiveFromNode(home, share)
                yield Compute(machine.seconds_for_flops(strip_flops))
                yield Wait(barrier.arrive())
        return body()

    for w, tid in enumerate(tids):
        machine.set_body(tid, worker_body(w))

    total = machine.run()
    return OpenMpResult(time=total, metrics=machine.metrics, n_threads=p)
