"""Tests for the discrete-event engine and SimEvent."""

import pytest

from repro.simulate.engine import Engine, SimEvent, SimulationError


class TestEngine:
    def test_time_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_events_fire_in_time_order(self):
        e = Engine()
        log = []
        e.schedule(2.0, lambda: log.append("b"))
        e.schedule(1.0, lambda: log.append("a"))
        e.schedule(3.0, lambda: log.append("c"))
        e.run()
        assert log == ["a", "b", "c"]
        assert e.now == 3.0

    def test_same_time_fifo_order(self):
        e = Engine()
        log = []
        for k in range(5):
            e.schedule(1.0, lambda k=k: log.append(k))
        e.run()
        assert log == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_at_absolute_time(self):
        e = Engine()
        log = []
        e.at(5.0, lambda: log.append(e.now))
        e.run()
        assert log == [5.0]

    def test_at_past_rejected(self):
        e = Engine()
        e.schedule(2.0, lambda: None)
        e.run()
        with pytest.raises(SimulationError):
            e.at(1.0, lambda: None)

    def test_nested_scheduling(self):
        e = Engine()
        log = []

        def first():
            log.append(("first", e.now))
            e.schedule(1.0, lambda: log.append(("second", e.now)))

        e.schedule(1.0, first)
        e.run()
        assert log == [("first", 1.0), ("second", 2.0)]

    def test_run_until(self):
        e = Engine()
        log = []
        e.schedule(1.0, lambda: log.append(1))
        e.schedule(10.0, lambda: log.append(10))
        e.run(until=5.0)
        assert log == [1]
        assert e.now == 5.0
        assert e.pending == 1

    def test_step_empty_returns_false(self):
        assert Engine().step() is False

    def test_max_events_guard(self):
        e = Engine()

        def loop():
            e.schedule(0.0, loop)

        e.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            e.run(max_events=100)

    def test_events_fired_counter(self):
        e = Engine()
        for _ in range(3):
            e.schedule(1.0, lambda: None)
        e.run()
        assert e.events_fired == 3


class TestSimEvent:
    def test_wait_then_fire(self):
        e = Engine()
        ev = SimEvent(e, "x")
        log = []
        ev.wait(lambda: log.append(e.now))
        e.schedule(2.0, ev.fire)
        e.run()
        assert log == [2.0]
        assert ev.fired

    def test_wait_after_fire_immediate(self):
        e = Engine()
        ev = SimEvent(e)
        ev.fire()
        log = []
        ev.wait(lambda: log.append(e.now))
        e.run()
        assert log == [0.0]

    def test_fire_with_delay(self):
        e = Engine()
        ev = SimEvent(e)
        log = []
        ev.wait(lambda: log.append(e.now))
        ev.fire(delay=3.0)
        e.run()
        assert log == [3.0]

    def test_late_waiter_honours_fire_delay(self):
        """A waiter registering after fire() still waits until release."""
        e = Engine()
        ev = SimEvent(e)
        log = []
        ev.fire(delay=5.0)
        ev.wait(lambda: log.append(e.now))
        e.run()
        assert log == [5.0]

    def test_waiter_after_release_time_runs_now(self):
        e = Engine()
        ev = SimEvent(e)
        ev.fire(delay=1.0)
        log = []
        e.schedule(10.0, lambda: ev.wait(lambda: log.append(e.now)))
        e.run()
        assert log == [10.0]

    def test_double_fire_rejected(self):
        e = Engine()
        ev = SimEvent(e)
        ev.fire()
        with pytest.raises(SimulationError):
            ev.fire()

    def test_multiple_waiters_all_released(self):
        e = Engine()
        ev = SimEvent(e)
        log = []
        for k in range(4):
            ev.wait(lambda k=k: log.append(k))
        ev.fire()
        e.run()
        assert sorted(log) == [0, 1, 2, 3]
