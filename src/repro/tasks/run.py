"""Execute a compiled task graph on the simulator, placed or unplaced.

:func:`run_graph` is the single-call path from a :class:`TaskGraph` to
a finished simulation: compile, extract the DAG communication matrix,
run the chosen placement policy (through the same
:func:`repro.placement.binder.bind_program` pipeline and memoized
TreeMatch tiers the stencil experiments use), and execute on a seeded
:class:`~repro.simulate.Machine`.  Determinism follows from the parts:
same graph + same machine + same seed = bit-identical run, across
engine modes and worker counts — the DAG differential suite enforces
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exec.cache import machine_inputs
from repro.orwl.program import Program
from repro.orwl.runtime import Runtime, RuntimeConfig, RunResult
from repro.placement.binder import BindPlan, bind_program
from repro.simulate.machine import Machine
from repro.tasks.compile import TaskTimes, compile_graph, dag_matrix
from repro.tasks.graph import TaskGraph
from repro.topology.tree import Topology
from repro.util.validate import ValidationError


@dataclass
class GraphRunResult:
    """Outcome of one DAG execution."""

    #: total simulated time (seconds) — the makespan.
    time: float
    #: the underlying runtime result (metrics, comm trace, engine stats).
    run: RunResult
    #: the placement decision that was applied.
    plan: BindPlan
    #: per-task simulated timestamps (``None`` unless *record_times*).
    times: Optional[TaskTimes]
    #: the compiled ORWL program.
    program: Program
    #: the machine the run executed on (tracer attached iff *trace*).
    machine: Machine
    #: the graph digest the run was keyed by.
    graph_digest: str

    @property
    def metrics(self):
        return self.run.metrics

    def fingerprint(self) -> str:
        """Joint run fingerprint (needs ``trace=True``)."""
        from repro.observe.determinism import run_fingerprint

        return run_fingerprint(self.machine)

    def schedule_ok(self, graph: TaskGraph) -> bool:
        """Every task finished and every edge was respected.

        Requires the run to have been made with ``record_times=True``;
        the per-edge invariant is ``ready[consumer] >= published
        [producer]`` — the consumer could not become runnable before its
        producer published.
        """
        if self.times is None:
            raise ValidationError("run_graph(..., record_times=True) required")
        tasks = graph.tasks()
        if len(self.times.done) != len(tasks):
            return False
        for node in tasks:
            for u in node.deps:
                if self.times.ready[node.name] < self.times.published[tasks[u].name]:
                    return False
        return True


def run_graph(
    graph: TaskGraph,
    preset: str = "small-numa",
    preset_args: tuple[int, ...] = (),
    topo: Optional[Topology] = None,
    policy: str = "treematch",
    seed: int = 0,
    engine_mode: Optional[str] = None,
    record_times: bool = False,
    trace: bool = False,
    control_threads: bool = True,
) -> GraphRunResult:
    """Compile, place, and execute *graph*; returns the result.

    The machine comes from the per-process construction cache
    (*preset* / *preset_args*, e.g. ``("paper-smp", (4, 8))``) unless an
    explicit *topo* is given.  *policy* is any placement registry name
    (``"treematch"``, ``"nobind"``, ``"service"``, ``"compact"``, ...);
    the affinity matrix fed to it is :func:`repro.tasks.compile
    .dag_matrix` — the DAG edge extraction.  With *trace*, a
    :class:`repro.observe.Tracer` is attached (fingerprints, perf
    reports); with *record_times*, per-task timestamps are recorded.
    """
    tracer = None
    if trace:
        from repro.observe.tracer import Tracer

        tracer = Tracer()
    if topo is not None:
        machine = Machine(topo, seed=seed, tracer=tracer, engine_mode=engine_mode)
    else:
        topo, dm = machine_inputs(preset, *preset_args)
        machine = Machine(
            topo, distance_model=dm, seed=seed, tracer=tracer,
            engine_mode=engine_mode,
        )

    times = TaskTimes() if record_times else None
    program = compile_graph(graph, times=times)
    matrix = dag_matrix(graph)
    plan = bind_program(program, topo, policy=policy, matrix=matrix)
    runtime = Runtime(
        program,
        machine,
        mapping=plan.mapping,
        control_mapping=plan.control_mapping,
        config=RuntimeConfig(control_threads=control_threads),
    )
    run = runtime.run()
    return GraphRunResult(
        time=run.time,
        run=run,
        plan=plan,
        times=times,
        program=program,
        machine=machine,
        graph_digest=graph.digest(),
    )
