"""Ablation A5 — affinity-extraction fidelity: static vs traced matrix.

The paper maps at launch time from the application's composition alone.
This bench runs LK23 once with runtime tracing and correlates the
trace-derived communication matrix with the statically extracted one;
a high correlation validates launch-time mapping.
"""

import pytest

from repro.experiments.ablations import affinity_extraction_fidelity


def test_affinity_extraction(benchmark):
    out = benchmark.pedantic(
        affinity_extraction_fidelity, kwargs=dict(iterations=3), rounds=1, iterations=1
    )
    benchmark.extra_info.update(out)
    assert out["correlation"] > 0.9
    assert out["trace_events"] > 0
