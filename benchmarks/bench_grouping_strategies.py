"""Ablation A6 — grouping-strategy comparison inside Algorithm 1.

Compares the three GroupProcesses heuristics (exact where feasible,
TreeMatch's greedy+refine, Scotch-style recursive bisection) on the
intra-group volume they retain, and their wall cost, at the paper's
matrix order.
"""

import numpy as np
import pytest

from repro.comm import patterns
from repro.treematch.grouping import group_processes, intra_group_volume

ORDER = 192
GROUP_SIZE = 8  # the paper machine's cores-per-socket


@pytest.fixture(scope="module")
def matrix():
    rows, cols = patterns.square_grid_shape(ORDER)
    return np.array(patterns.stencil_2d(rows, cols, edge_volume=1000.0).values)


@pytest.mark.parametrize("strategy", ["greedy", "bisection"])
def test_grouping_strategy(benchmark, matrix, strategy):
    groups = benchmark(group_processes, matrix, GROUP_SIZE, strategy=strategy)
    quality = intra_group_volume(matrix, groups)
    benchmark.extra_info["intra_group_volume"] = quality
    total = float(matrix.sum()) / 2
    benchmark.extra_info["retained_fraction"] = quality / total
    # sanity: a meaningful share of the traffic is kept inside groups
    assert quality > 0.3 * total


def test_greedy_vs_bisection_quality(benchmark, matrix):
    def both():
        g = intra_group_volume(
            matrix, group_processes(matrix, GROUP_SIZE, strategy="greedy")
        )
        b = intra_group_volume(
            matrix, group_processes(matrix, GROUP_SIZE, strategy="bisection")
        )
        return g, b

    g, b = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["greedy_volume"] = g
    benchmark.extra_info["bisection_volume"] = b
    # Neither heuristic collapses: each keeps >= 60% of the other's volume.
    assert g > 0.6 * b
    assert b > 0.6 * g
