"""Parallel sweep execution (``repro.exec``).

Every experiment in this repo — the Fig. 1 sweep, the ablations, the
cluster comparison, the benchmarks — is a set of *independent*
simulation points: same code, different parameters, no shared state.
Each point is a full discrete-event simulation firing millions of pure
Python events, so a paper-scale sweep is dominated by CPU time that
parallelizes embarrassingly across the host's own cores.

:class:`SweepRunner` fans such points over a process pool while keeping
the repo's determinism contract intact:

* **deterministic ordering** — results come back in submission order,
  regardless of which worker finished first;
* **bit-identical to serial** — a point's outcome depends only on its
  arguments (every simulation is seeded), so ``n_workers=8`` and
  ``n_workers=1`` produce byte-identical results and determinism
  fingerprints (``tests/test_exec.py`` pins this);
* **per-point seeds** — :func:`derive_seed` derives stable,
  process-independent child seeds from a base seed and a point key;
* **worker-side caching** — :mod:`repro.exec.cache` memoizes topology
  and :class:`~repro.topology.distance.DistanceModel` construction per
  preset inside each worker (LRU-bounded), so a 192-PU distance matrix
  is built once per process, not once per point;
* **placement memo** — :func:`cached_tree_match` keys TreeMatch results
  on ``(topology fingerprint, comm-matrix digest, params)``; a
  replicated sweep derives each seed-independent mapping once, with an
  optional on-disk tier shared across workers and runs;
* **zero-copy shared topologies** — :mod:`repro.exec.shm` exports
  distance tables into ``multiprocessing.shared_memory`` once per
  sweep; workers attach read-only numpy views instead of rebuilding;
* **content-addressed point cache** — :class:`~repro.exec.cache.PointCache`
  stores whole sweep-point results under ``sha256(fn ⊕ kwargs ⊕ schema)``,
  so re-running a sweep only simulates the delta (``--no-cache`` on
  every CLI restores the cold path, bit-identically);
* **chunked dispatch** — points are shipped in chunks to amortize IPC;
* **crash resilience** — a dying worker (OOM kill, segfault in a native
  extension) breaks the pool; the runner rebuilds it and retries the
  unfinished chunks, finally falling back to in-process serial
  execution so a sweep always completes;
* **progress events** — :class:`~repro.exec.progress.SweepEvent`
  callbacks, optionally mirrored into a
  :class:`repro.observe.Tracer` stream (kind ``"sweep"``).
"""

from __future__ import annotations

from repro.exec.cache import (
    PointCache,
    cache_dir,
    cache_enabled,
    cache_stats,
    cached_distance_model,
    cached_topology,
    cached_tree_match,
    clear_cache,
    configure_cache,
    default_point_cache,
    machine_inputs,
    matrix_digest,
    point_key,
    reset_cache_stats,
    topology_fingerprint,
)
from repro.exec.progress import (
    ProgressBar,
    SweepEvent,
    log_progress,
    tracer_progress,
)
from repro.exec.runner import (
    ExecError,
    SweepRunner,
    Task,
    derive_seed,
    resolve_workers,
    run_sweep,
)

__all__ = [
    "ExecError",
    "PointCache",
    "SweepEvent",
    "SweepRunner",
    "Task",
    "cache_dir",
    "cache_enabled",
    "cache_stats",
    "cached_distance_model",
    "cached_topology",
    "cached_tree_match",
    "clear_cache",
    "configure_cache",
    "default_point_cache",
    "derive_seed",
    "log_progress",
    "ProgressBar",
    "machine_inputs",
    "matrix_digest",
    "point_key",
    "reset_cache_stats",
    "resolve_workers",
    "run_sweep",
    "topology_fingerprint",
    "tracer_progress",
]
