"""The ORWL (Ordered Read-Write Locks) task-based programming model.

Full Python implementation of the model the paper enriches:

* :mod:`~repro.orwl.fifo` — per-location request FIFOs with ordered
  read-write-lock semantics (readers share, writers exclusive, strict
  insertion order).
* :mod:`~repro.orwl.location` — shared resources (``orwl_location``).
* :mod:`~repro.orwl.handle` — access paths (``orwl_handle``) with the
  iterative ``orwl_next`` re-insertion protocol.
* :mod:`~repro.orwl.program` — static composition: tasks, operations,
  handle declarations (``orwl_task``).
* :mod:`~repro.orwl.runtime` — the decentralized event-based runtime,
  executing programs on the simulated machine with per-task control
  threads.
"""

from repro.orwl.fifo import AccessMode, FifoError, OrwlFifo, Request, RequestState
from repro.orwl.handle import Handle
from repro.orwl.location import Location
from repro.orwl.program import Operation, Program, TaskDecl
from repro.orwl.runtime import OpContext, RunResult, Runtime, RuntimeConfig
from repro.orwl import idioms

__all__ = [
    "AccessMode",
    "FifoError",
    "OrwlFifo",
    "Request",
    "RequestState",
    "Handle",
    "Location",
    "Operation",
    "Program",
    "TaskDecl",
    "OpContext",
    "RunResult",
    "Runtime",
    "RuntimeConfig",
    "idioms",
]
