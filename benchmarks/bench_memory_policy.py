"""Extension experiment E4 — would ``numactl --interleave`` save OpenMP?

A classic practitioner question about the paper's comparison: the
OpenMP port's collapse comes from master-node first-touch — is
topology-aware *thread* placement really needed, or would fixing the
*page* placement (interleaving) suffice?

Answer reproduced here: interleaving removes the single-controller
hotspot and recovers much of OpenMP's scaling, but it converts all
traffic to ~uniformly remote rather than local — so ORWL-Bind, which
makes traffic actually local, still wins at full scale.  Thread and
data placement are complements, not substitutes.
"""

import pytest

from repro.experiments.fig1 import run_point
from repro.kernels.openmp import OpenMpConfig, run_openmp_lk23
from repro.simulate.machine import Machine
from repro.topology import presets

CORES = 192
N = 16384
ITERS = 3


def _omp(memory_policy: str) -> float:
    topo = presets.paper_smp(24, 8)
    machine = Machine(topo, seed=0)
    r = run_openmp_lk23(
        machine,
        OpenMpConfig(n=N, n_threads=CORES, iterations=ITERS,
                     memory_policy=memory_policy),
    )
    return r.time


@pytest.mark.parametrize("memory_policy", ["master", "interleave"])
def test_openmp_memory_policy(benchmark, memory_policy):
    t = benchmark.pedantic(_omp, args=(memory_policy,), rounds=1, iterations=1)
    benchmark.extra_info["memory_policy"] = memory_policy
    benchmark.extra_info["sim_time_s"] = t
    assert t > 0


def test_interleave_helps_but_bind_still_wins(benchmark):
    def all_three():
        t_master = _omp("master")
        t_inter = _omp("interleave")
        t_bind = run_point("orwl-bind", CORES, iterations=ITERS, n=N, seed=0).time
        return t_master, t_inter, t_bind

    t_master, t_inter, t_bind = benchmark.pedantic(all_three, rounds=1, iterations=1)
    benchmark.extra_info["openmp_master_s"] = t_master
    benchmark.extra_info["openmp_interleave_s"] = t_inter
    benchmark.extra_info["orwl_bind_s"] = t_bind
    # Interleaving fixes the hotspot...
    assert t_inter < 0.8 * t_master
    # ...but remote-everywhere still loses to actually-local.
    assert t_bind < t_inter
