"""Block-stencil decomposition geometry.

Shared by the numerical LK23 implementations, the ORWL program builder,
and the affinity generators: how an N×N matrix is cut into a grid of
blocks, which blocks neighbour which, and how many bytes each frontier
(edge or corner) carries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.util.validate import ValidationError


class Direction(enum.Enum):
    """The eight stencil directions, (row_delta, col_delta)."""

    N = (-1, 0)
    S = (1, 0)
    W = (0, -1)
    E = (0, 1)
    NW = (-1, -1)
    NE = (-1, 1)
    SW = (1, -1)
    SE = (1, 1)

    @property
    def is_corner(self) -> bool:
        dr, dc = self.value
        return dr != 0 and dc != 0

    @property
    def opposite(self) -> "Direction":
        dr, dc = self.value
        return _BY_DELTA[(-dr, -dc)]


_BY_DELTA = {d.value: d for d in Direction}

#: Edge directions (full block side), then corners (single element).
EDGES = (Direction.N, Direction.S, Direction.W, Direction.E)
CORNERS = (Direction.NW, Direction.NE, Direction.SW, Direction.SE)
ALL_DIRECTIONS = EDGES + CORNERS


@dataclass(frozen=True)
class BlockGrid:
    """An N×N element matrix decomposed into rows × cols blocks.

    Blocks are identified by ``(r, c)`` grid coordinates or by the
    row-major ``block_id``.  ``n`` need not divide evenly: blocks take
    near-equal sizes (differing by at most one row/column), the standard
    decomposition — the paper's own 16384² matrix on a 12×16 grid has
    uneven block heights.  Exact per-block extents come from
    :meth:`slice_of`; the ``block_*`` properties are grid averages, used
    by the cost models where a ±1-row difference is immaterial.
    """

    n: int
    rows: int
    cols: int
    element_bytes: int = 8

    def __post_init__(self) -> None:
        if self.n <= 0 or self.rows <= 0 or self.cols <= 0:
            raise ValidationError("n, rows, cols must all be > 0")
        if self.element_bytes <= 0:
            raise ValidationError("element_bytes must be > 0")
        if self.rows > self.n or self.cols > self.n:
            raise ValidationError(
                f"grid {self.rows}x{self.cols} finer than the {self.n}x{self.n} matrix"
            )

    # -- geometry -----------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return self.rows * self.cols

    def row_bound(self, r: int) -> int:
        """First matrix row of block-row *r* (``row_bound(rows) == n``)."""
        return (r * self.n) // self.rows

    def col_bound(self, c: int) -> int:
        """First matrix column of block-column *c*."""
        return (c * self.n) // self.cols

    @property
    def block_height(self) -> float:
        """Average block height in rows."""
        return self.n / self.rows

    @property
    def block_width(self) -> float:
        """Average block width in columns."""
        return self.n / self.cols

    @property
    def block_points(self) -> float:
        """Average elements per block."""
        return self.block_height * self.block_width

    @property
    def block_bytes(self) -> float:
        """Average memory footprint of one block's data."""
        return self.block_points * self.element_bytes

    def exact_block_shape(self, r: int, c: int) -> tuple[int, int]:
        """Exact (height, width) of block (r, c)."""
        rs, cs = self.slice_of(r, c)
        return (rs.stop - rs.start, cs.stop - cs.start)

    def frontier_bytes(self, direction: Direction) -> float:
        """Payload of a frontier export in *direction* (grid average)."""
        if direction.is_corner:
            return float(self.element_bytes)
        if direction in (Direction.N, Direction.S):
            return self.block_width * self.element_bytes
        return self.block_height * self.element_bytes

    # -- identification ---------------------------------------------------------

    def block_id(self, r: int, c: int) -> int:
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ValidationError(f"block ({r}, {c}) outside {self.rows}x{self.cols} grid")
        return r * self.cols + c

    def coords(self, block_id: int) -> tuple[int, int]:
        if not 0 <= block_id < self.n_blocks:
            raise ValidationError(f"block id {block_id} out of range")
        return divmod(block_id, self.cols)

    def blocks(self) -> Iterator[tuple[int, int]]:
        """All block coordinates in row-major order."""
        for r in range(self.rows):
            for c in range(self.cols):
                yield (r, c)

    # -- neighbourhood -------------------------------------------------------------

    def neighbor(self, r: int, c: int, direction: Direction) -> Optional[tuple[int, int]]:
        """Coordinates of the neighbour in *direction*, or ``None`` at
        the domain boundary (the decomposition is not periodic)."""
        dr, dc = direction.value
        rr, cc = r + dr, c + dc
        if 0 <= rr < self.rows and 0 <= cc < self.cols:
            return (rr, cc)
        return None

    def neighbor_directions(self, r: int, c: int) -> list[Direction]:
        """Directions in which block (r, c) actually has a neighbour."""
        return [d for d in ALL_DIRECTIONS if self.neighbor(r, c, d) is not None]

    def slice_of(self, r: int, c: int) -> tuple[slice, slice]:
        """NumPy index slices of block (r, c) within the N×N array."""
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ValidationError(f"block ({r}, {c}) outside {self.rows}x{self.cols} grid")
        return (
            slice(self.row_bound(r), self.row_bound(r + 1)),
            slice(self.col_bound(c), self.col_bound(c + 1)),
        )
