"""DAG frontend must compile and dispatch thousands of tasks per second.

Two throughput gates on the :mod:`repro.tasks` layer plus the identity
contract:

* **compile** — building a workload family's :class:`TaskGraph` and
  lowering it through :func:`repro.tasks.compile_graph` (dependency
  inference, per-edge locations, handle wiring).  This is frontend
  overhead a user pays before the first simulated event; it must stay
  negligible next to the simulation itself.
* **dispatch** — end-to-end :func:`repro.tasks.run_graph` (compile +
  TreeMatch placement + the full ORWL runtime) in tasks/second.  Each
  DAG task is one simulated thread with FIFO lock traffic, so this is
  the sequencing cost of the whole stack.
* **identity** — the dispatched run must be bit-identical between the
  batched and scalar engines (the differential contract, asserted here
  so a throughput optimization can never buy speed with divergence).

Floors are ~5-10x below cold-run measurements on a 1-core CI box, so
they catch order-of-magnitude regressions (an accidentally quadratic
inference loop, per-task re-placement), not scheduler noise.
Best-of-N timing to shed noise on shared runners.
"""

import time

from repro.experiments.dag import build_workload
from repro.tasks import compile_graph, run_graph

SCALE = 3
TIMING_ROUNDS = 3
MIN_COMPILE_TASKS_PER_S = 300.0
MIN_DISPATCH_TASKS_PER_S = 400.0


def compile_throughput(workload: str) -> tuple[float, int]:
    """Best-of-N tasks/second through build + compile."""
    best = 0.0
    n_tasks = 0
    for _ in range(TIMING_ROUNDS):
        t0 = time.perf_counter()
        graph = build_workload(workload, scale=SCALE)
        compile_graph(graph)
        wall = time.perf_counter() - t0
        n_tasks = graph.n_tasks
        best = max(best, n_tasks / wall)
    return best, n_tasks


def test_compile_throughput(benchmark):
    # Warm imports and the numpy generator before timing.
    compile_graph(build_workload("divconq", scale=1))

    def timed() -> dict[str, float]:
        rates = {}
        for workload in ("cholesky", "bfs", "divconq"):
            rate, n_tasks = compile_throughput(workload)
            rates[workload] = rate
            benchmark.extra_info[f"{workload}_tasks"] = n_tasks
            benchmark.extra_info[f"{workload}_tasks_per_s"] = rate
        return rates

    rates = benchmark.pedantic(timed, rounds=1, iterations=1)
    for workload, rate in rates.items():
        assert rate >= MIN_COMPILE_TASKS_PER_S, (
            f"{workload} compile only {rate:,.0f} tasks/s; "
            f"floor is {MIN_COMPILE_TASKS_PER_S:,.0f}"
        )


def test_dispatch_throughput_and_identity(benchmark):
    graph = build_workload("divconq", scale=SCALE)
    # Warm the topology/distance construction cache and imports.
    run_graph(
        build_workload("divconq", scale=1),
        preset="paper-smp", preset_args=(2, 8),
    )

    def timed() -> float:
        best = 0.0
        for _ in range(TIMING_ROUNDS):
            t0 = time.perf_counter()
            run_graph(graph, preset="paper-smp", preset_args=(2, 8))
            wall = time.perf_counter() - t0
            best = max(best, graph.n_tasks / wall)
        return best

    rate = benchmark.pedantic(timed, rounds=1, iterations=1)
    benchmark.extra_info["tasks"] = graph.n_tasks
    benchmark.extra_info["tasks_per_s"] = rate

    batched = run_graph(
        graph, preset="paper-smp", preset_args=(2, 8), trace=True
    )
    scalar = run_graph(
        graph, preset="paper-smp", preset_args=(2, 8), trace=True,
        engine_mode="scalar",
    )
    benchmark.extra_info["sim_time_s"] = batched.time
    assert batched.fingerprint() == scalar.fingerprint(), (
        "batched and scalar engines diverged on the dispatched DAG"
    )
    assert rate >= MIN_DISPATCH_TASKS_PER_S, (
        f"dispatch only {rate:,.0f} tasks/s; "
        f"floor is {MIN_DISPATCH_TASKS_PER_S:,.0f}"
    )
