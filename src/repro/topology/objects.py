"""Typed topology objects: the hwloc object model.

A machine is represented as a tree of :class:`TopologyObject` nodes whose
types come from :class:`ObjType` (Machine > NUMANode > Package > caches >
Core > PU), the same vocabulary hwloc uses.  Each object carries:

* ``type`` and a per-type ``logical_index`` (hwloc's logical index),
* an ``os_index`` for PUs and NUMA nodes (the OS-visible numbering),
* its :class:`~repro.topology.cpuset.CpuSet` (the PUs underneath it),
* optional :class:`CacheAttributes` / :class:`MemoryAttributes`.

Objects are mutable while a :class:`~repro.topology.builder.TopologyBuilder`
assembles the tree and should be treated as read-only afterwards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.topology.cpuset import CpuSet, EMPTY


class ObjType(enum.IntEnum):
    """Topology object types, ordered from outermost to innermost.

    The integer order encodes the conventional nesting: a type with a
    smaller value can contain a type with a larger value.  This mirrors
    hwloc's ``hwloc_compare_types``.
    """

    MACHINE = 0
    GROUP = 1
    NUMANODE = 2
    PACKAGE = 3
    L3 = 4
    L2 = 5
    L1 = 6
    CORE = 7
    PU = 8

    @property
    def is_cache(self) -> bool:
        return self in (ObjType.L3, ObjType.L2, ObjType.L1)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Types that can appear between MACHINE and PU, outermost first.
CONTAINMENT_ORDER: tuple[ObjType, ...] = tuple(ObjType)


@dataclass
class CacheAttributes:
    """Cache attributes (sizes in bytes, latency in seconds)."""

    size: int
    line_size: int = 64
    associativity: int = 8
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"cache size must be > 0, got {self.size}")
        if self.line_size <= 0:
            raise ValueError(f"line size must be > 0, got {self.line_size}")


@dataclass
class MemoryAttributes:
    """Local memory attributes of a NUMA node."""

    local_bytes: int
    latency: float = 0.0
    bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if self.local_bytes < 0:
            raise ValueError("local_bytes must be >= 0")


@dataclass(eq=False)
class TopologyObject:
    """One node of the topology tree.

    Identity semantics: two objects are equal only if they are the same
    object (``eq=False``), because a tree may legitimately contain many
    structurally identical siblings.
    """

    type: ObjType
    logical_index: int = 0
    os_index: Optional[int] = None
    name: str = ""
    cache: Optional[CacheAttributes] = None
    memory: Optional[MemoryAttributes] = None
    parent: Optional["TopologyObject"] = None
    children: list["TopologyObject"] = field(default_factory=list)
    cpuset: CpuSet = EMPTY
    depth: int = 0

    # -- structure -----------------------------------------------------------

    def add_child(self, child: "TopologyObject") -> "TopologyObject":
        """Attach *child* and return it (for chaining during building)."""
        if child.parent is not None:
            raise ValueError("child already has a parent")
        if child.type <= self.type and child.type is not ObjType.GROUP:
            raise ValueError(
                f"cannot nest {child.type.name} inside {self.type.name}: "
                "containment order violated"
            )
        child.parent = self
        self.children.append(child)
        return child

    @property
    def arity(self) -> int:
        """Number of direct children."""
        return len(self.children)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def ancestors(self) -> Iterator["TopologyObject"]:
        """Yield the parent chain from direct parent to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["TopologyObject"]:
        """Yield all strict descendants in depth-first pre-order."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def subtree(self) -> Iterator["TopologyObject"]:
        """Yield this object then all descendants (pre-order)."""
        yield self
        yield from self.descendants()

    def leaves(self) -> Iterator["TopologyObject"]:
        """Yield leaf objects of the subtree in left-to-right order."""
        for node in self.subtree():
            if node.is_leaf:
                yield node

    def pus(self) -> Iterator["TopologyObject"]:
        """Yield the PU objects of the subtree in left-to-right order."""
        for node in self.subtree():
            if node.type is ObjType.PU:
                yield node

    # -- formatting -----------------------------------------------------------

    def type_label(self) -> str:
        """Human-readable label like ``"Package#3"`` or ``"PU#17"``."""
        idx = self.os_index if self.os_index is not None else self.logical_index
        return f"{self.type.name.capitalize()}#{idx}"

    def __repr__(self) -> str:
        return (
            f"<{self.type.name} L#{self.logical_index}"
            + (f" P#{self.os_index}" if self.os_index is not None else "")
            + (f" cpuset={self.cpuset.to_list_string()}" if self.cpuset else "")
            + ">"
        )
