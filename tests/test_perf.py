"""Tests for repro.perf: critical path, attribution, counters, NUMA
matrices, top-down gaps, flamegraph export, and the CLI wiring.

The load-bearing cases are the ledger ones: the backward walk must
partition the makespan *exactly* (that is what makes the top-down gap
buckets sum to the measured time difference), and the critical path
must respect ``length <= makespan <= serial_time`` on every run the
suite can throw at it.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import run_lk23
from repro.observe import EventFilter, check_run
from repro.observe.invariants import ALL_INVARIANTS, InvariantChecker
from repro.observe.tracer import TraceEvent
from repro.perf import (
    LOCAL_LEVELS,
    PerfReport,
    TraceIndex,
    analyze,
    attribute_gap,
    attribute_makespan,
    bucket_of,
    compute_counter_groups,
    extract_critical_path,
    folded_stacks,
    render_heatmap,
    traffic_matrix,
    write_folded,
)
from repro.stats.aggregate import summarize_map
from repro.util.validate import ValidationError

SMALL = dict(trace=True, topology="small-numa", n=1024, iterations=2, seed=7)


@pytest.fixture(scope="module")
def runs():
    """One traced bind and one traced nobind run on the small machine."""
    out = {}
    for label, policy in (("bind", "treematch"), ("nobind", "nobind")):
        r = run_lk23(policy=policy, **SMALL)
        out[label] = (list(r.trace.events), r.time)
    return out


@pytest.fixture(scope="module")
def reports(runs):
    return {
        label: analyze(events, label=label, measured_time=t, n_pus=8, n_nodes=2)
        for label, (events, t) in runs.items()
    }


# -- critical path ----------------------------------------------------------


def test_critical_path_bound_holds(reports):
    for rep in reports.values():
        cp = rep.critical_path
        assert cp.bound_ok()
        assert cp.length <= cp.makespan * (1 + 1e-9)
        assert cp.makespan <= cp.serial_time * (1 + 1e-9)
        assert cp.n_chain > 0
        assert cp.parallelism >= 1.0


def test_critical_path_golden_small_run(reports):
    """Pin the small-run numbers: the simulator is deterministic, so
    these only move when the model (or the analysis) changes — which
    should be a conscious decision, not an accident."""
    bind = reports["bind"].critical_path
    assert bind.makespan == pytest.approx(0.0017869504, rel=1e-9)
    assert bind.length == pytest.approx(0.0017043819, rel=1e-6)
    assert bind.n_spans == 960
    nobind = reports["nobind"].critical_path
    assert nobind.makespan == pytest.approx(0.0050895058, rel=1e-9)
    # NoBind leaves far more parallel slack: its chain covers much less
    # of the makespan than Bind's.
    assert nobind.coverage < bind.coverage


def test_critical_path_chain_is_causal(reports):
    for rep in reports.values():
        chain = rep.critical_path.chain
        for a, b in zip(chain, chain[1:]):
            assert a.seq < b.seq
            # A zero-weight wait link may *start* before its releaser,
            # but its completion can never precede the predecessor's.
            assert a.end <= b.end + 1e-12


def test_critical_path_empty_stream():
    cp = extract_critical_path([])
    assert cp.length == 0.0 and cp.makespan == 0.0
    assert cp.bound_ok()


def test_critical_path_single_thread_is_serial():
    events = [
        TraceEvent(0, "compute", 0.0, 1.0, tid=0, pu=0),
        TraceEvent(1, "transfer", 1.0, 0.5, tid=0, pu=0, level="NUMANODE",
                   nbytes=10.0, detail="from-node:0"),
        TraceEvent(2, "compute", 1.5, 0.5, tid=0, pu=0),
    ]
    cp = extract_critical_path(events)
    assert cp.length == pytest.approx(2.0)
    assert cp.makespan == pytest.approx(2.0)
    assert cp.by_kind == pytest.approx(
        {"compute": 1.5, "transfer:NUMANODE": 0.5}
    )


# -- makespan attribution ---------------------------------------------------


def test_attribution_partitions_makespan_exactly(reports):
    for rep in reports.values():
        at = rep.attribution
        assert at.total == pytest.approx(at.makespan, rel=1e-9, abs=1e-15)
        assert all(v >= 0.0 for v in at.buckets.values())


def test_attribution_golden_small_run(reports):
    at = reports["bind"].attribution
    # The bound run is compute-dominated; the nobind run stalls.
    assert at.share("compute") > 0.8
    assert reports["nobind"].attribution.share("compute") < 0.5


def test_gap_buckets_sum_to_measured_gap(runs, reports):
    slow, fast = reports["nobind"], reports["bind"]
    gap = attribute_gap(
        slow.attribution, fast.attribution,
        slow_label="nobind", fast_label="bind",
        measured_slow=runs["nobind"][1], measured_fast=runs["bind"][1],
    )
    assert gap.measured_gap > 0
    # The acceptance bar: buckets explain the measured difference to 1 %.
    assert gap.attributed == pytest.approx(gap.measured_gap, rel=0.01)
    # And in fact exactly, up to float dust:
    assert abs(gap.unattributed) < 1e-9 * gap.measured_gap + 1e-12
    assert "runq" in gap.render() or "transfer" in gap.render()


def test_gap_grouping_folds_levels():
    from repro.perf.topdown import GapAttribution

    g = GapAttribution(
        slow_label="a", fast_label="b", slow_time=2.0, fast_time=1.0,
        contributions={"transfer:MACHINE": 0.6, "transfer:L3": 0.1,
                       "wait": 0.3},
        measured_slow=2.0, measured_fast=1.0,
    )
    grouped = g.grouped()
    assert set(grouped) == {"transfer", "lock-wait"}
    assert sum(grouped["transfer"].values()) == pytest.approx(0.7)
    assert g.attributed == pytest.approx(g.gap)


# -- counter groups ---------------------------------------------------------


def test_counter_groups_reconcile_with_index(runs):
    events, _ = runs["bind"]
    idx = TraceIndex.of(events)
    groups = {g.name: g for g in compute_counter_groups(events, n_pus=8)}
    assert set(groups) == {"CPU", "STALL", "MEM", "NUMA", "SCHED"}
    assert groups["CPU"].get("busy seconds (all PUs)") == pytest.approx(
        idx.work_time
    )
    assert groups["CPU"].get("makespan") == pytest.approx(idx.makespan)
    stall = groups["STALL"]
    assert stall.get("thread-seconds total") == pytest.approx(idx.serial_time)
    assert 0.0 <= stall.get("stall fraction") <= 1.0
    mem = groups["MEM"]
    total = sum(e.nbytes for e in idx.spans if e.kind == "transfer")
    assert mem.get("bytes total") == pytest.approx(total)
    numa = groups["NUMA"]
    local = sum(
        e.nbytes for e in idx.spans
        if e.kind == "transfer" and e.level in LOCAL_LEVELS
    )
    assert numa.get("node-local bytes") == pytest.approx(local)
    assert numa.get("remote bytes") == pytest.approx(total - local)


def test_counter_groups_render_and_missing_metric(reports):
    groups = reports["bind"].groups
    text = "\n".join(g.render() for g in groups)
    assert "Group CPU" in text and "Group NUMA" in text
    with pytest.raises(KeyError):
        groups[0].get("no such metric")


# -- NUMA traffic matrix ----------------------------------------------------


def test_traffic_matrix_reconciles_with_metrics(runs):
    events, _ = runs["bind"]
    tm = traffic_matrix(events, n_nodes=2)
    transfers = [e for e in events if e.kind == "transfer"]
    assert tm.n_transfers == len(transfers)
    assert tm.unattributed_bytes == 0.0
    assert tm.total_bytes == pytest.approx(sum(e.nbytes for e in transfers))
    local = sum(e.nbytes for e in transfers if e.level in LOCAL_LEVELS)
    assert tm.local_bytes == pytest.approx(local)
    assert 0.0 <= tm.local_fraction <= 1.0
    assert sum(tm.row_sums()) == pytest.approx(tm.total_bytes)
    assert sum(tm.col_sums()) == pytest.approx(tm.total_bytes)


def test_traffic_matrix_order_invariant(runs):
    events, _ = runs["bind"]
    tm1 = traffic_matrix(events, n_nodes=2)
    shuffled = list(events)
    random.Random(5).shuffle(shuffled)
    tm2 = traffic_matrix(shuffled, n_nodes=2)
    # Equal up to accumulation-order float dust.
    import numpy as np

    assert np.allclose(tm1.bytes, tm2.bytes, rtol=1e-12, atol=0.0)
    assert np.allclose(tm1.seconds, tm2.seconds, rtol=1e-12, atol=0.0)


def test_traffic_matrix_json_round_trip(runs):
    events, _ = runs["bind"]
    tm = traffic_matrix(events, n_nodes=2)
    d = json.loads(json.dumps(tm.to_json_dict()))
    tm2 = type(tm).from_json_dict(d)
    assert (tm.bytes == tm2.bytes).all()
    assert tm2.n_transfers == tm.n_transfers


def test_heatmap_renderings(runs):
    events, _ = runs["bind"]
    tm = traffic_matrix(events, n_nodes=2)
    numeric = render_heatmap(tm)
    assert "rows=producer" in numeric and "total" in numeric
    shaded = render_heatmap(tm, numeric_limit=1)
    assert "scale:" in shaded
    with pytest.raises(ValueError):
        render_heatmap(tm, value="nope")


def test_heatmap_empty_matrix():
    tm = traffic_matrix([])
    assert "(no transfers)" in render_heatmap(tm)


# -- flamegraph export ------------------------------------------------------


def test_folded_stacks_sum_to_span_seconds(runs, tmp_path):
    events, _ = runs["bind"]
    stacks = folded_stacks(events, root="bind")
    span_us = sum(e.dur for e in events if e.is_span()) * 1e6
    assert sum(stacks.values()) == pytest.approx(span_us)
    assert all(s.startswith("bind;") for s in stacks)
    dst = tmp_path / "out.folded"
    n = write_folded(events, dst)
    lines = dst.read_text().splitlines()
    assert n == len(lines) > 0
    assert lines == sorted(lines)
    # Every line is "stack count" with an integer microsecond count.
    for line in lines:
        stack, _, us = line.rpartition(" ")
        assert stack and int(us) >= 1


# -- report facade ----------------------------------------------------------


def test_report_json_round_trip_identical(reports):
    rep = reports["bind"]
    s = json.dumps(rep.to_json_dict(), sort_keys=True)
    rep2 = PerfReport.from_json_dict(json.loads(s))
    assert json.dumps(rep2.to_json_dict(), sort_keys=True) == s
    assert rep2.render() == rep.render()


def test_report_deterministic_across_same_seed_runs(runs):
    events, t = runs["bind"]
    r2 = run_lk23(policy="treematch", **SMALL)
    rep_a = analyze(events, label="x", measured_time=t, n_pus=8, n_nodes=2)
    rep_b = analyze(list(r2.trace.events), label="x", measured_time=r2.time,
                    n_pus=8, n_nodes=2)
    assert rep_a.render() == rep_b.render()
    assert json.dumps(rep_a.to_json_dict(), sort_keys=True) == json.dumps(
        rep_b.to_json_dict(), sort_keys=True
    )


def test_report_summary_flat_scalars(reports):
    s = reports["bind"].summary()
    assert s["makespan"] > 0 and s["critical_path"] > 0
    assert any(k.startswith("walk:") for k in s)
    assert all(isinstance(v, float) or isinstance(v, int) for v in s.values())


# -- property-based: synthetic tiled streams --------------------------------


@st.composite
def tiled_streams(draw):
    """Streams satisfying the tracer's guarantees: per-thread tiling
    spans from t=0, emission ordered by start time."""
    n_threads = draw(st.integers(1, 4))
    staged = []
    for tid in range(n_threads):
        clock = 0.0
        for _ in range(draw(st.integers(1, 8))):
            kind = draw(st.sampled_from(["compute", "transfer", "wait", "runq"]))
            dur = draw(st.floats(1e-7, 1e-3, allow_nan=False))
            extra = {}
            if kind == "transfer":
                level = draw(st.sampled_from(["L3", "NUMANODE", "MACHINE"]))
                extra = dict(level=level,
                             nbytes=draw(st.floats(1.0, 1e6)),
                             detail=f"from-node:{draw(st.integers(0, 3))}")
            staged.append((clock, tid, kind, dur, extra))
            clock += dur
    staged.sort(key=lambda s: (s[0], s[1]))
    return [
        TraceEvent(seq, kind, ts, dur, tid=tid, thread=f"T{tid}", pu=tid,
                   node=tid % 4, **extra)
        for seq, (ts, tid, kind, dur, extra) in enumerate(staged)
    ]


@settings(max_examples=60, deadline=None)
@given(events=tiled_streams())
def test_property_attribution_sums_to_makespan(events):
    at = attribute_makespan(events)
    assert at.total == pytest.approx(at.makespan, rel=1e-6, abs=1e-12)
    assert all(v >= -1e-15 for v in at.buckets.values())


@settings(max_examples=60, deadline=None)
@given(events=tiled_streams())
def test_property_critical_path_bound(events):
    cp = extract_critical_path(events)
    assert cp.bound_ok()
    assert cp.length == pytest.approx(sum(cp.by_kind.values()), rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(events=tiled_streams(), seed=st.integers(0, 2**16))
def test_property_matrix_permutation_invariant(events, seed):
    tm1 = traffic_matrix(events, n_nodes=4)
    shuffled = list(events)
    random.Random(seed).shuffle(shuffled)
    tm2 = traffic_matrix(shuffled, n_nodes=4)
    import numpy as np

    assert np.allclose(tm1.bytes, tm2.bytes, rtol=1e-12, atol=0.0)
    assert tm1.total_bytes == pytest.approx(
        sum(e.nbytes for e in events if e.kind == "transfer")
    )


# -- EventFilter ------------------------------------------------------------


def test_event_filter_parse_and_match(runs):
    events, _ = runs["bind"]
    f = EventFilter.parse("kind=transfer|wait,level=MACHINE,min-dur=1e-9")
    kept = list(f.apply(events))
    assert kept and all(e.kind == "transfer" for e in kept)
    assert all(e.level == "MACHINE" for e in kept)
    # empty spec matches everything
    assert len(list(EventFilter.parse("").apply(events))) == len(events)
    # thread glob
    ctl = list(EventFilter.parse("thread=*ctl*").apply(events))
    assert ctl and all("ctl" in e.thread for e in ctl)
    # integer keys
    t0 = list(EventFilter.parse("tid=0|1").apply(events))
    assert t0 and all(e.tid in (0, 1) for e in t0)


@pytest.mark.parametrize("spec", [
    "bogus=1", "kind", "kind=", "tid=abc", "min-dur=much",
])
def test_event_filter_rejects_bad_specs(spec):
    with pytest.raises(ValueError):
        EventFilter.parse(spec)


# -- invariants -------------------------------------------------------------


def test_new_invariants_registered():
    assert "critical-path-bound" in ALL_INVARIANTS
    assert "numa-traffic-reconciliation" in ALL_INVARIANTS


def test_invariants_pass_on_traced_run():
    from repro.observe import capture

    with capture() as cap:
        run_lk23(policy="treematch", topology="small-numa", n=512, iterations=1)
    (report,) = cap.check_all()
    assert report.ok


def test_numa_reconciliation_catches_tampered_counters():
    from repro.observe import capture
    from repro.topology.objects import ObjType

    with capture() as cap:
        run_lk23(policy="treematch", topology="small-numa", n=512, iterations=1)
    (machine,) = cap.machines
    machine.metrics.bytes_by_level[ObjType.MACHINE] += 1_000_000
    report = check_run(machine, raise_on_violation=False)
    assert report.violated("numa-traffic-reconciliation")


def test_critical_path_bound_catches_overlapping_spans():
    from repro.observe import capture

    with capture() as cap:
        run_lk23(policy="treematch", topology="small-numa", n=512, iterations=1)
    (machine,) = cap.machines
    tracer = machine.tracer
    # Two fat co-located spans on one thread: their program-order chain
    # weighs 2 x makespan, which no consistent stream can exhibit.
    big = tracer.events[-1].end * 2
    tracer._events.append(TraceEvent(len(tracer), "compute", 0.0, big, tid=0))
    tracer._events.append(TraceEvent(len(tracer), "compute", 0.0, big, tid=0))
    report = InvariantChecker().check(machine)
    assert report.violated("critical-path-bound")


# -- stats: summarize_map ---------------------------------------------------


def test_summarize_map_common_keys_only():
    rows = [{"a": 1.0, "b": 2.0}, {"a": 3.0, "c": 4.0}]
    stats = summarize_map(rows)
    assert list(stats) == ["a"]
    assert stats["a"].mean == pytest.approx(2.0)
    assert stats["a"].n == 2


def test_summarize_map_rejects_empty():
    with pytest.raises(ValidationError):
        summarize_map([])


# -- experiment + CLI wiring ------------------------------------------------


def test_fig1_point_carries_perf_dict():
    from repro.experiments.fig1 import run_point

    p = run_point("orwl-bind", 8, iterations=1, n=1024, perf_report=True)
    assert p.perf is not None
    rep = PerfReport.from_json_dict(p.perf)
    assert rep.measured_time == pytest.approx(p.time)
    assert rep.critical_path.bound_ok()
    # default path stays perf-free (and therefore byte-identical)
    p0 = run_point("orwl-bind", 8, iterations=1, n=1024)
    assert p0.perf is None
    assert p0.time == pytest.approx(p.time)


def test_scaling_point_carries_perf_dict():
    from repro.experiments.scaling import run_scaling_point

    p = run_scaling_point("paper", "orwl-bind", iterations=1,
                          cells_per_core=1024, perf_report=True)
    assert p.perf is not None
    assert PerfReport.from_json_dict(p.perf).matrix.n_nodes == 24


def test_perf_cli_trace_in(tmp_path, capsys, runs):
    from repro.observe.export import write_jsonl
    from repro.tools.perf import main

    events, _ = runs["bind"]
    trace_file = tmp_path / "run.jsonl"
    write_jsonl(events, trace_file)
    out_json = tmp_path / "perf.json"
    rc = main(["--trace-in", str(trace_file), "--json", str(out_json),
               "--flamegraph", str(tmp_path / "stacks")])
    assert rc == 0
    text = capsys.readouterr().out
    assert "critical path" in text and "Group CPU" in text
    assert "NUMA traffic" in text
    doc = json.loads(out_json.read_text())
    assert doc["format"] == "repro-perf" and len(doc["reports"]) == 1
    assert (tmp_path / "stacks" / "run.folded").exists()


def test_perf_cli_gap_report(tmp_path, capsys):
    from repro.tools.perf import main

    out_json = tmp_path / "perf.json"
    rc = main(["--preset", "paper", "--impl", "orwl-bind,orwl-nobind",
               "--n", "2048", "--iterations", "1", "--json", str(out_json)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "Top-down gap attribution" in text
    doc = json.loads(out_json.read_text())
    (gap,) = doc["gaps"]
    attributed = sum(gap["contributions"].values())
    assert attributed == pytest.approx(gap["measured_gap"], rel=0.01)


def test_fig1_cli_perf_report_artifacts(tmp_path, capsys):
    from repro.tools.fig1 import main

    out = tmp_path / "perf"
    rc = main(["--cores", "8", "--iterations", "1", "--n", "1024",
               "--workers", "1", "--perf-report", str(out)])
    assert rc == 0
    assert (out / "fig1-orwl-bind-8.json").exists()
    assert (out / "fig1-orwl-bind-8.txt").exists()
    topdown = (out / "topdown-8.txt").read_text()
    assert "Top-down gap attribution" in topdown


def test_trace_cli_filter_and_stats(tmp_path, capsys):
    from repro.tools.trace import main

    trace_file = tmp_path / "t.jsonl"
    rc = main(["--workload", "lk23", "--topology", "small-numa", "--n", "512",
               "--iterations", "1", "--format", "jsonl",
               "--out", str(trace_file)])
    assert rc == 0
    capsys.readouterr()
    rc = main(["--input", str(trace_file),
               "--filter", "kind=transfer,level=NUMANODE", "--stats"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "kept" in text and "bytes [NUMANODE" in text
    with pytest.raises(SystemExit):
        main(["--input", str(trace_file), "--check"])
