"""Placement-as-a-service: online, fault-aware, phase-adaptive mapping.

The paper runs TreeMatch once, offline, at launch.  Its own conclusion
— locality decisions must track the machine — points at a long-lived
*service*: a process that answers "where should these threads go?"
continuously, staying correct as PUs fail or drain and as the
workload's communication pattern drifts between phases.  This module
is that service, built entirely from pieces the repo already trusts:

* **Queries** are keyed by (topology fingerprint, comm-matrix digest,
  dead-PU set, parameters) and served through the
  :func:`repro.exec.cache.cached_tree_match` memo, so a warm decision
  is a dictionary lookup, not an Algorithm 1 run.
* **Failures/drains** (:meth:`PlacementService.fail` /
  :meth:`~PlacementService.drain`) re-map incrementally via
  :func:`repro.treematch.remap.remap_incremental`: only repair domains
  that lost a PU are re-placed, survivors keep their bindings, and the
  repair always starts from the pristine healthy base with the
  *cumulative* dead set — so any interleaving of the same fault events
  yields byte-identical mappings.  ``mode="full"`` forces the
  restrict-and-rerun reference (:func:`repro.treematch.remap.remap_full`
  through the memo) for differential testing.
* **Phase changes** are detected by a :class:`CommSketch` — a sliding
  window over live :mod:`repro.observe` transfer events — whose matrix
  is compared (Pearson, via
  :func:`repro.placement.affinity.matrix_correlation`) against the
  matrix the current decision was computed from;
  :meth:`PlacementService.maybe_replace` re-places when the
  correlation falls below the threshold.

Concurrency: :meth:`PlacementService.query` is asyncio-native with
**single-flight** semantics — concurrent queries for the same key
share one computation (asserted via ``cache_stats`` in the tests); a
query that raises leaves no partial state in either the service or the
underlying cache tiers.

See ``docs/placement-service.md`` for the full API and failure
semantics, and ``repro.tools.place`` for the CLI front end.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from functools import partial
from typing import Iterable, Optional

import numpy as np

from repro.comm.matrix import CommMatrix
from repro.exec.cache import (
    bump_stat,
    cached_tree_match,
    matrix_digest,
    placement_key,
    topology_fingerprint,
)
from repro.metrics import core as metrics_core
from repro.placement.affinity import matrix_correlation
from repro.topology.distance import DistanceModel
from repro.topology.tree import Topology
from repro.treematch.mapping import Mapping
from repro.treematch.remap import remap_incremental
from repro.util.validate import ValidationError

__all__ = ["CommSketch", "Decision", "PlacementService"]


# ---------------------------------------------------------------------------
# Sliding communication sketch
# ---------------------------------------------------------------------------


class CommSketch:
    """A sliding-window communication-matrix estimate from live events.

    Holds the last *window* pairwise transfer records and exposes their
    sum as a :class:`CommMatrix`.  Two feeding paths:

    * :meth:`record` — the exact primitive: "thread *i* and thread *j*
      exchanged *v* bytes".
    * :meth:`observe` — the adapter for :class:`repro.observe.TraceEvent`
      streams.  Simulator transfer events carry the *consumer* tid and
      the producer's NUMA node (``detail="from-node:N"``) but not the
      producer tid, so the volume is split evenly across the threads
      the current mapping places on that node — the best attribution
      available without changing the (golden-pinned) trace schema.

    The matrix is rebuilt from the window on demand rather than kept as
    a running sum, so eviction never accumulates floating-point drift:
    the same window contents always produce the bit-identical matrix.
    """

    def __init__(self, order: int, window: int = 4096) -> None:
        if order < 1:
            raise ValidationError(f"sketch order must be >= 1, got {order}")
        if window < 1:
            raise ValidationError(f"sketch window must be >= 1, got {window}")
        self.order = order
        self.window = window
        self._events: deque[tuple[int, int, float]] = deque(maxlen=window)
        self._recorded = 0

    @property
    def n_events(self) -> int:
        """Pairwise records currently inside the window."""
        return len(self._events)

    @property
    def total_recorded(self) -> int:
        """Pairwise records ever accepted (including evicted ones)."""
        return self._recorded

    def record(self, i: int, j: int, nbytes: float) -> None:
        """Account *nbytes* between threads *i* and *j*."""
        if not (0 <= i < self.order and 0 <= j < self.order):
            raise ValidationError(
                f"thread pair ({i}, {j}) outside sketch order {self.order}"
            )
        if i == j or nbytes <= 0:
            return
        self._events.append((i, j, float(nbytes)))
        self._recorded += 1

    def observe(self, event, mapping: Mapping, node_of_pu: dict[int, int]) -> int:
        """Feed one :class:`~repro.observe.tracer.TraceEvent`.

        *mapping* is the placement active when the event was produced;
        *node_of_pu* maps PU os_index → NUMA logical index (the id
        space of the event's ``from-node`` detail).  Returns the number
        of pairwise records added (0 for non-transfer events and
        transfers whose producer node hosts no mapped peer).
        """
        if event.kind != "transfer" or event.nbytes <= 0:
            return 0
        consumer = event.tid
        if not (0 <= consumer < self.order):
            return 0
        detail = event.detail
        if not detail.startswith("from-node:"):
            return 0
        try:
            producer_node = int(detail[len("from-node:"):])
        except ValueError:
            return 0
        peers = [
            t
            for t in range(min(self.order, mapping.n_threads))
            if t != consumer
            and mapping.pu(t) >= 0
            and node_of_pu.get(mapping.pu(t), 0) == producer_node
        ]
        if not peers:
            return 0
        share = float(event.nbytes) / len(peers)
        for t in peers:
            self.record(consumer, t, share)
        return len(peers)

    def matrix(self) -> CommMatrix:
        """The window's communication matrix (symmetric, zero-diagonal)."""
        m = np.zeros((self.order, self.order), dtype=np.float64)
        for i, j, v in self._events:
            m[i, j] += v
            m[j, i] += v
        return CommMatrix(m)

    def correlation(self, reference: CommMatrix) -> float:
        """Pearson correlation of the sketch against *reference*."""
        return matrix_correlation(self.matrix(), reference)

    def clear(self) -> None:
        self._events.clear()


# ---------------------------------------------------------------------------
# Decisions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Decision:
    """One answer from the service: a mapping plus its provenance.

    ``key`` is the full content address (topology ⊕ matrix ⊕ dead set ⊕
    params ⊕ mode); two decisions with equal keys are guaranteed
    byte-identical mappings.
    """

    mapping: Mapping
    key: str
    method: str
    epoch: int
    failed: tuple[int, ...]
    drained: tuple[int, ...]
    moved: tuple[int, ...] = ()
    matrix_digest: str = ""
    latency_s: float = 0.0
    cached: bool = False


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class PlacementService:
    """Serve placement queries for one topology, staying correct online.

    Parameters
    ----------
    topo:
        The healthy machine.  Failed PUs are *marked*, never removed
        from this tree.
    strategy, refine:
        TreeMatch parameters used for every decision.
    window, min_events, phase_threshold:
        Phase detection knobs: the sketch holds *window* pairwise
        records; :meth:`maybe_replace` only acts once at least
        *min_events* records arrived since the current decision, and
        only when the sketch-vs-decision correlation drops below
        *phase_threshold*.
    memo_cap:
        Service-level decision memo size (keys → :class:`Decision`).

    Thread-safety: synchronous methods mutate plain dicts under the
    GIL; the asyncio front end (:meth:`query`) adds single-flight
    de-duplication so concurrent identical queries compute once.
    """

    def __init__(
        self,
        topo: Topology,
        *,
        strategy: str = "auto",
        refine: bool = True,
        window: int = 4096,
        min_events: int = 64,
        phase_threshold: float = 0.75,
        memo_cap: int = 512,
    ) -> None:
        if not 0.0 <= phase_threshold <= 1.0:
            raise ValidationError(
                f"phase_threshold must be in [0, 1], got {phase_threshold}"
            )
        self.topo = topo
        self.strategy = strategy
        self.refine = refine
        self.window = window
        self.min_events = min_events
        self.phase_threshold = phase_threshold
        self._fingerprint = topology_fingerprint(topo)
        self._valid_pus = frozenset(pu.os_index for pu in topo.pus())
        self._failed: set[int] = set()
        self._drained: set[int] = set()
        self._epoch = 0
        self._model: Optional[DistanceModel] = None
        self._memo: OrderedDict[str, Decision] = OrderedDict()
        self._memo_cap = memo_cap
        self._inflight: dict[str, asyncio.Future] = {}
        # Phase state: the matrix the current decision was computed
        # from, the sketch fed since, and the decision itself.
        self._sketch: Optional[CommSketch] = None
        self._active_matrix: Optional[CommMatrix] = None
        self._active_decision: Optional[Decision] = None
        self._node_of_pu: dict[int, int] = {}
        for pu in topo.pus():
            node = topo.numa_node_of(pu.os_index)
            self._node_of_pu[pu.os_index] = (
                node.logical_index if node is not None else 0
            )
        # Liveness state for health() and the serve CLI.
        self._started_monotonic = time.monotonic()
        self._queries_served = 0
        self._last_error: Optional[str] = None
        self._last_error_age_t: Optional[float] = None

    # -- telemetry ----------------------------------------------------------

    def _metric_query(self, latency_s: float, *, warm: bool) -> None:
        """Record one answered query (when metrics are enabled).

        Wall-clock latency histograms are host-dependent, hence
        unstable; the query/hit/miss counters are parent-process only
        (the service lives in one process), so they stay stable.
        """
        reg = metrics_core.registry()
        reg.counter("placement_queries_total", "Placement queries answered").inc()
        if warm:
            reg.counter(
                "placement_memo_hits_total", "Queries served from the memo"
            ).inc()
            hist = reg.histogram(
                "placement_warm_seconds",
                "Warm (memoized) query latency",
                stable=False,
            )
        else:
            reg.counter(
                "placement_memo_misses_total", "Queries that computed a mapping"
            ).inc()
            hist = reg.histogram(
                "placement_cold_seconds",
                "Cold (computed) query latency",
                stable=False,
            )
        hist.observe(latency_s)

    def record_error(self, exc: BaseException) -> None:
        """Remember the most recent failure for :meth:`health`."""
        self._last_error = f"{type(exc).__name__}: {exc}"
        self._last_error_age_t = time.monotonic()

    def health(self) -> dict:
        """Liveness summary: uptime, queries served, last error.

        ``status`` is ``"ok"`` until an error is recorded via
        :meth:`record_error` (``"degraded"`` afterwards) — the payload
        ``repro.tools.place serve``'s ``health`` verb and the HTTP
        ``/healthz`` endpoint return.
        """
        now = time.monotonic()
        return {
            "status": "ok" if self._last_error is None else "degraded",
            "uptime_s": now - self._started_monotonic,
            "queries_served": self._queries_served,
            "epoch": self._epoch,
            "failed": list(self.failed),
            "drained": list(self.drained),
            "memo_entries": len(self._memo),
            "last_error": self._last_error,
            "last_error_age_s": (
                None
                if self._last_error_age_t is None
                else now - self._last_error_age_t
            ),
        }

    def slo(self) -> dict:
        """Derived p50/p95/p99 SLO lines from the latency histograms.

        Quantiles are bucket-resolution upper bounds (exponential
        buckets, so within 2x of the true value).  Empty when metrics
        are disabled or no queries were recorded yet.
        """
        if not metrics_core.is_enabled():
            return {}
        reg = metrics_core.registry()
        out: dict = {}
        for tier, name in (
            ("warm", "placement_warm_seconds"),
            ("cold", "placement_cold_seconds"),
        ):
            hist = reg.get(name)
            if hist is None or hist.count == 0:  # type: ignore[union-attr]
                continue
            out[tier] = {
                "count": hist.count,  # type: ignore[union-attr]
                "p50_s": hist.quantile(0.5),  # type: ignore[union-attr]
                "p95_s": hist.quantile(0.95),  # type: ignore[union-attr]
                "p99_s": hist.quantile(0.99),  # type: ignore[union-attr]
            }
        return out

    # -- fault state --------------------------------------------------------

    @property
    def failed(self) -> tuple[int, ...]:
        return tuple(sorted(self._failed))

    @property
    def drained(self) -> tuple[int, ...]:
        return tuple(sorted(self._drained))

    @property
    def epoch(self) -> int:
        """Bumped on every fault/restore/phase event; decisions carry it."""
        return self._epoch

    def _check_pus(self, pus: Iterable[int]) -> list[int]:
        out = [int(p) for p in pus]
        for p in out:
            if p not in self._valid_pus:
                raise ValidationError(f"unknown PU os_index {p}")
        return out

    def fail(self, *pus: int) -> None:
        """Mark PUs as failed (cumulative; idempotent)."""
        for p in self._check_pus(pus):
            self._failed.add(p)
        self._epoch += 1
        bump_stat("service_fault")
        if metrics_core.is_enabled():
            metrics_core.registry().counter(
                "placement_faults_total", "fail()/drain() events"
            ).inc()

    def drain(self, *pus: int) -> None:
        """Mark PUs as administratively drained (cumulative; idempotent)."""
        for p in self._check_pus(pus):
            self._drained.add(p)
        self._epoch += 1
        bump_stat("service_fault")
        if metrics_core.is_enabled():
            metrics_core.registry().counter(
                "placement_faults_total", "fail()/drain() events"
            ).inc()

    def restore(self, *pus: int) -> None:
        """Return PUs to service (inverse of fail/drain)."""
        for p in self._check_pus(pus):
            self._failed.discard(p)
            self._drained.discard(p)
        self._epoch += 1

    # -- queries ------------------------------------------------------------

    def _dead(self) -> tuple[int, ...]:
        return tuple(sorted(self._failed | self._drained))

    def _key(self, matrix: CommMatrix, mode: str) -> str:
        return placement_key(
            self.topo,
            matrix,
            strategy=str(self.strategy),
            refine=bool(self.refine),
            failed=self.failed,
            drained=self.drained,
            mode=mode,
        )

    def _resolve_mode(self, mode: str) -> str:
        if mode not in ("auto", "full", "incremental"):
            raise ValidationError(
                f"mode must be auto|full|incremental, got {mode!r}"
            )
        if not self._dead():
            return "healthy"
        return "incremental" if mode in ("auto", "incremental") else "full"

    def query_sync(self, matrix: CommMatrix, *, mode: str = "auto") -> Decision:
        """Answer one placement query synchronously.

        *mode* selects the repair path under failures: ``"incremental"``
        (default via ``"auto"``) repairs the pristine healthy base with
        :func:`~repro.treematch.remap.remap_incremental`; ``"full"``
        re-runs TreeMatch on the restricted topology (the differential
        reference).  With no dead PUs both are the plain memoized
        TreeMatch.

        The decision depends only on (topology, matrix, cumulative dead
        set, parameters) — never on the order faults were observed in —
        so repeated queries are byte-deterministic.
        """
        t0 = time.perf_counter()
        bump_stat("service_query")
        self._queries_served += 1
        resolved = self._resolve_mode(mode)
        key = self._key(matrix, resolved)
        hit = self._memo.get(key)
        if hit is not None:
            self._memo.move_to_end(key)
            bump_stat("service_memo_hit")
            decision = Decision(
                mapping=hit.mapping,
                key=hit.key,
                method=hit.method,
                epoch=self._epoch,
                failed=hit.failed,
                drained=hit.drained,
                moved=hit.moved,
                matrix_digest=hit.matrix_digest,
                latency_s=time.perf_counter() - t0,
                cached=True,
            )
            self._activate(matrix, decision)
            if metrics_core.is_enabled():
                self._metric_query(decision.latency_s, warm=True)
            return decision

        failed_t, drained_t = self.failed, self.drained
        moved: tuple[int, ...] = ()
        if resolved == "healthy":
            result = cached_tree_match(
                self.topo, matrix, strategy=self.strategy, refine=self.refine
            )
            mapping = result.mapping.restricted(matrix.order)
            method = "treematch"
        elif resolved == "full":
            result = cached_tree_match(
                self.topo,
                matrix,
                strategy=self.strategy,
                refine=self.refine,
                failed=self._dead(),
            )
            mapping = result.mapping.restricted(matrix.order)
            method = "full-remap"
        else:
            base = cached_tree_match(
                self.topo, matrix, strategy=self.strategy, refine=self.refine
            )
            if self._model is None:
                self._model = DistanceModel(self.topo)
            repair = remap_incremental(
                self.topo,
                matrix,
                base.mapping.restricted(matrix.order),
                failed=failed_t,
                drained=drained_t,
                model=self._model,
            )
            mapping = repair.mapping
            method = repair.method
            moved = repair.moved

        decision = Decision(
            mapping=mapping,
            key=key,
            method=method,
            epoch=self._epoch,
            failed=failed_t,
            drained=drained_t,
            moved=moved,
            matrix_digest=matrix_digest(matrix),
            latency_s=time.perf_counter() - t0,
            cached=False,
        )
        self._memo[key] = decision
        while len(self._memo) > self._memo_cap:
            self._memo.popitem(last=False)
        self._activate(matrix, decision)
        if metrics_core.is_enabled():
            self._metric_query(decision.latency_s, warm=False)
        return decision

    async def query(self, matrix: CommMatrix, *, mode: str = "auto") -> Decision:
        """Async front end of :meth:`query_sync` with single-flight.

        Concurrent queries for the same key await one computation (the
        duplicates are counted under ``service_single_flight`` in
        :func:`repro.exec.cache.cache_stats`).  If the computation
        raises, every waiter sees the exception, the in-flight slot is
        released, and neither the service memo nor the underlying cache
        tiers retain partial state — the next query recomputes cleanly.
        """
        loop = asyncio.get_running_loop()
        key = self._key(matrix, self._resolve_mode(mode))
        existing = self._inflight.get(key)
        if existing is not None:
            bump_stat("service_single_flight")
            if metrics_core.is_enabled():
                metrics_core.registry().counter(
                    "placement_single_flight_waits_total",
                    "Queries that awaited an identical in-flight computation",
                ).inc()
            return await asyncio.shield(existing)
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            decision = await loop.run_in_executor(
                None, partial(self.query_sync, matrix, mode=mode)
            )
        except BaseException as exc:
            self.record_error(exc)
            if not future.cancelled():
                future.set_exception(exc)
                future.exception()  # mark retrieved: waiters re-raise below
            raise
        else:
            if not future.cancelled():
                future.set_result(decision)
            return decision
        finally:
            self._inflight.pop(key, None)

    # -- phase detection ----------------------------------------------------

    def _activate(self, matrix: CommMatrix, decision: Decision) -> None:
        """Make *decision* current and restart the sketch against it."""
        self._active_matrix = matrix
        self._active_decision = decision
        if self._sketch is None or self._sketch.order != matrix.order:
            self._sketch = CommSketch(matrix.order, window=self.window)
        else:
            self._sketch.clear()

    @property
    def active_decision(self) -> Optional[Decision]:
        return self._active_decision

    def ingest(self, events: Iterable) -> int:
        """Feed live :mod:`repro.observe` events into the phase sketch.

        Requires an active decision (the sketch attributes producer
        volume through the current mapping).  Returns the number of
        pairwise records added.
        """
        if self._sketch is None or self._active_decision is None:
            raise ValidationError("no active decision; query before ingesting")
        added = 0
        mapping = self._active_decision.mapping
        for event in events:
            added += self._sketch.observe(event, mapping, self._node_of_pu)
        return added

    def phase_shift(self) -> Optional[float]:
        """Sketch-vs-active-matrix correlation, or ``None`` if too early.

        ``None`` until *min_events* pairwise records accumulated; a
        value below ``phase_threshold`` means the live pattern no
        longer resembles the matrix the current placement was computed
        for.
        """
        if (
            self._sketch is None
            or self._active_matrix is None
            or self._sketch.n_events < self.min_events
        ):
            return None
        return self._sketch.correlation(self._active_matrix)

    def maybe_replace(self) -> Optional[Decision]:
        """Re-place if the workload changed phase; else ``None``.

        When the correlation is below ``phase_threshold``, the sketch
        matrix becomes the new query matrix: the service re-queries
        (through every cache tier, honoring the current dead set), the
        epoch advances, and the fresh decision becomes the phase
        reference.
        """
        corr = self.phase_shift()
        if corr is None or corr >= self.phase_threshold:
            return None
        assert self._sketch is not None
        bump_stat("service_phase_replace")
        if metrics_core.is_enabled():
            metrics_core.registry().counter(
                "placement_phase_replacements_total",
                "Re-placements triggered by phase drift",
            ).inc()
        self._epoch += 1
        return self.query_sync(self._sketch.matrix())

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Service-side counters and state for reports and the CLI."""
        return {
            "topology": self._fingerprint[:16],
            "epoch": self._epoch,
            "failed": list(self.failed),
            "drained": list(self.drained),
            "memo_entries": len(self._memo),
            "inflight": len(self._inflight),
            "sketch_events": 0 if self._sketch is None else self._sketch.n_events,
        }
