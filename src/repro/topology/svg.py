"""SVG rendering of topologies (lstopo-style nested boxes).

Produces a standalone SVG document: each topology object is a rounded
box containing its children, colour-coded by type the way hwloc's
lstopo output is.  No dependency beyond string formatting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.topology.objects import ObjType, TopologyObject
from repro.topology.tree import Topology

#: Fill colours per object type (hwloc-inspired palette).
_COLORS: dict[ObjType, str] = {
    ObjType.MACHINE: "#e8e8e8",
    ObjType.GROUP: "#f2f2d8",
    ObjType.NUMANODE: "#fdeea2",
    ObjType.PACKAGE: "#d9d9d9",
    ObjType.L3: "#ffffff",
    ObjType.L2: "#ffffff",
    ObjType.L1: "#ffffff",
    ObjType.CORE: "#bbddbb",
    ObjType.PU: "#8fd0e8",
}

_PAD = 6  # inner padding per nesting level
_LABEL_H = 16  # label strip height
_PU_W, _PU_H = 44, 28  # leaf box size
_GAP = 4  # gap between siblings


@dataclass
class _Box:
    obj: TopologyObject
    w: float
    h: float
    children: list["_Box"]


def _measure(obj: TopologyObject) -> _Box:
    if obj.type is ObjType.PU:
        return _Box(obj, _PU_W, _PU_H, [])
    kids = [_measure(c) for c in obj.children]
    inner_w = sum(k.w for k in kids) + _GAP * (len(kids) - 1)
    inner_h = max(k.h for k in kids)
    return _Box(
        obj,
        inner_w + 2 * _PAD,
        inner_h + _LABEL_H + 2 * _PAD,
        kids,
    )


def _label(obj: TopologyObject) -> str:
    base = obj.type_label()
    if obj.cache is not None:
        kib = obj.cache.size // 1024
        return f"{base} ({kib // 1024} MiB)" if kib >= 1024 else f"{base} ({kib} KiB)"
    if obj.memory is not None:
        return f"{base} ({obj.memory.local_bytes >> 30} GiB)"
    return base


#: Colour ramp for mapped PUs, by thread count (1, 2, 3, 4+).
_LOAD_COLORS = ("#7bc87b", "#e8c860", "#e8915f", "#d95f5f")


def _emit(
    box: _Box,
    x: float,
    y: float,
    out: list[str],
    load: Optional[dict[int, int]] = None,
) -> None:
    color = _COLORS.get(box.obj.type, "#ffffff")
    if (
        box.obj.type is ObjType.PU
        and load is not None
        and load.get(box.obj.os_index, 0) > 0
    ):
        color = _LOAD_COLORS[min(load[box.obj.os_index], len(_LOAD_COLORS)) - 1]
    out.append(
        f'<rect x="{x:.1f}" y="{y:.1f}" width="{box.w:.1f}" height="{box.h:.1f}" '
        f'rx="3" fill="{color}" stroke="#555" stroke-width="1"/>'
    )
    if box.obj.type is ObjType.PU:
        label = f"PU#{box.obj.os_index}"
        if load is not None and load.get(box.obj.os_index, 0) > 1:
            label += f" x{load[box.obj.os_index]}"
        out.append(
            f'<text x="{x + box.w / 2:.1f}" y="{y + box.h / 2 + 4:.1f}" '
            f'text-anchor="middle" font-size="10" font-family="sans-serif">'
            f"{label}</text>"
        )
        return
    out.append(
        f'<text x="{x + _PAD:.1f}" y="{y + _LABEL_H - 4:.1f}" '
        f'font-size="10" font-family="sans-serif">{_label(box.obj)}</text>'
    )
    cx = x + _PAD
    cy = y + _LABEL_H + _PAD
    for kid in box.children:
        _emit(kid, cx, cy, out, load)
        cx += kid.w + _GAP


def to_svg(topo: Topology, title: Optional[str] = None, mapping=None) -> str:
    """Render *topo* as a standalone SVG document string.

    With *mapping* (a :class:`repro.treematch.mapping.Mapping`), PUs
    hosting threads are coloured by their load (green = 1 thread,
    through red = 4+), and oversubscribed PUs show the count — a visual
    placement report.
    """
    load: Optional[dict[int, int]] = None
    if mapping is not None:
        load = dict(mapping.occupancy())
    root = _measure(topo.root)
    title_h = 18 if title else 0
    width = root.w + 2 * _PAD
    height = root.h + 2 * _PAD + title_h
    out: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    if title:
        out.append(
            f'<text x="{_PAD}" y="13" font-size="12" font-weight="bold" '
            f'font-family="sans-serif">{title}</text>'
        )
    _emit(root, _PAD, _PAD + title_h, out, load)
    out.append("</svg>")
    return "\n".join(out)


def save_svg(
    topo: Topology, path: str, title: Optional[str] = None, mapping=None
) -> None:
    """Write :func:`to_svg` output to *path*."""
    from pathlib import Path

    Path(path).write_text(
        to_svg(topo, title=title or topo.name, mapping=mapping), encoding="utf-8"
    )
