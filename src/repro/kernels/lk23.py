"""Livermore Kernel 23: 2-D implicit hydrodynamics fragment.

The original LFK loop (Fortran, ``za`` updated in place)::

    DO 23 j = 2, 6
    DO 23 k = 2, n
      QA = ZA(k,j+1)*ZR(k,j) + ZA(k,j-1)*ZB(k,j)
         + ZA(k+1,j)*ZU(k,j) + ZA(k-1,j)*ZV(k,j) + ZZ(k,j)
      ZA(k,j) = ZA(k,j) + 0.175 * (QA - ZA(k,j))
    23 CONTINUE

We provide three numerically equivalent-by-construction variants:

* :func:`lk23_reference` — direct loop transcription (Gauss–Seidel
  ordering, like the Fortran); the ground truth for tests, O(n²) Python
  loops, use small sizes only.
* :func:`lk23_jacobi` — the block-synchronous (Jacobi) variant that the
  parallel decompositions compute: the update uses the *previous*
  iteration's neighbour values.  Fully vectorized.
* :func:`lk23_blocked` — :func:`lk23_jacobi` computed block by block
  with explicit halo exchange over a :class:`~repro.kernels.stencil
  .BlockGrid` — the exact data movement the ORWL decomposition
  performs.  Tests assert it matches :func:`lk23_jacobi` bit for bit.

The performance models elsewhere only need the kernel's cost shape:
:data:`FLOPS_PER_POINT` and the frontier geometry from
:mod:`repro.kernels.stencil`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.stencil import BlockGrid
from repro.util.rng import SeedLike, make_rng
from repro.util.validate import ValidationError

#: 4 multiplies + 4 adds for QA, plus subtract/multiply/add for the
#: relaxation step = 11 floating-point operations per updated point.
FLOPS_PER_POINT = 11

#: The kernel's relaxation factor.
RELAX = 0.175


@dataclass
class Lk23Arrays:
    """The kernel's five coefficient arrays plus the iterate ``za``."""

    za: np.ndarray
    zz: np.ndarray
    zr: np.ndarray
    zb: np.ndarray
    zu: np.ndarray
    zv: np.ndarray

    def __post_init__(self) -> None:
        shape = self.za.shape
        for name in ("zz", "zr", "zb", "zu", "zv"):
            arr = getattr(self, name)
            if arr.shape != shape:
                raise ValidationError(f"{name} shape {arr.shape} != za shape {shape}")

    def copy(self) -> "Lk23Arrays":
        return Lk23Arrays(
            self.za.copy(), self.zz.copy(), self.zr.copy(),
            self.zb.copy(), self.zu.copy(), self.zv.copy(),
        )


def make_arrays(n: int, seed: SeedLike = 0) -> Lk23Arrays:
    """Random but reproducible kernel inputs of size n×n.

    Coefficients are scaled (< 0.25 each) so the relaxation is a
    contraction and iterates stay bounded.
    """
    if n < 3:
        raise ValidationError(f"n must be >= 3 for a 5-point stencil, got {n}")
    rng = make_rng(seed)
    za = rng.standard_normal((n, n))
    zz = rng.standard_normal((n, n)) * 0.01
    coef = lambda: rng.random((n, n)) * 0.24  # noqa: E731 - tiny local factory
    return Lk23Arrays(za, zz, coef(), coef(), coef(), coef())


def lk23_reference(arrays: Lk23Arrays, iterations: int = 1) -> np.ndarray:
    """Direct loop transcription (Gauss–Seidel order, row sweep).

    Updates the interior (indices 1..n-2), as the Fortran updates
    2..n-1.  In-place on a copy; returns the final ``za``.
    """
    if iterations <= 0:
        raise ValidationError("iterations must be > 0")
    a = arrays.copy()
    za = a.za
    n = za.shape[0]
    for _ in range(iterations):
        for k in range(1, n - 1):
            for j in range(1, n - 1):
                qa = (
                    za[k, j + 1] * a.zr[k, j]
                    + za[k, j - 1] * a.zb[k, j]
                    + za[k + 1, j] * a.zu[k, j]
                    + za[k - 1, j] * a.zv[k, j]
                    + a.zz[k, j]
                )
                za[k, j] += RELAX * (qa - za[k, j])
    return za


def lk23_jacobi_step(arrays: Lk23Arrays) -> np.ndarray:
    """One vectorized Jacobi sweep; returns the new ``za`` (out of place)."""
    za = arrays.za
    new = za.copy()
    qa = (
        za[1:-1, 2:] * arrays.zr[1:-1, 1:-1]
        + za[1:-1, :-2] * arrays.zb[1:-1, 1:-1]
        + za[2:, 1:-1] * arrays.zu[1:-1, 1:-1]
        + za[:-2, 1:-1] * arrays.zv[1:-1, 1:-1]
        + arrays.zz[1:-1, 1:-1]
    )
    new[1:-1, 1:-1] = za[1:-1, 1:-1] + RELAX * (qa - za[1:-1, 1:-1])
    return new


def lk23_jacobi(arrays: Lk23Arrays, iterations: int = 1) -> np.ndarray:
    """*iterations* Jacobi sweeps (block-synchronous semantics)."""
    if iterations <= 0:
        raise ValidationError("iterations must be > 0")
    a = arrays.copy()
    for _ in range(iterations):
        a.za = lk23_jacobi_step(a)
    return a.za


def lk23_blocked(
    arrays: Lk23Arrays, grid: BlockGrid, iterations: int = 1
) -> np.ndarray:
    """Blocked Jacobi with explicit halo exchange.

    Each block keeps a (h+2)×(w+2) working copy with a one-element halo,
    refreshed from neighbouring blocks every iteration — the memory
    behaviour the ORWL decomposition has, expressed in NumPy.  The
    result is identical to :func:`lk23_jacobi` (tests assert equality),
    demonstrating the decomposition is computation-preserving.
    """
    if iterations <= 0:
        raise ValidationError("iterations must be > 0")
    if grid.n != arrays.za.shape[0] or arrays.za.ndim != 2:
        raise ValidationError(
            f"grid is for n={grid.n}, arrays are {arrays.za.shape}"
        )
    a = arrays.copy()
    za = a.za
    n = grid.n
    for _ in range(iterations):
        new = za.copy()
        for r, c in grid.blocks():
            rs, cs = grid.slice_of(r, c)
            # Working window including halo, clipped at domain boundary.
            r0, r1 = max(rs.start - 1, 0), min(rs.stop + 1, n)
            c0, c1 = max(cs.start - 1, 0), min(cs.stop + 1, n)
            win = za[r0:r1, c0:c1]
            # Interior of the window that corresponds to updatable points
            # of this block (global indices 1..n-2 only).
            gr0, gr1 = max(rs.start, 1), min(rs.stop, n - 1)
            gc0, gc1 = max(cs.start, 1), min(cs.stop, n - 1)
            if gr0 >= gr1 or gc0 >= gc1:
                continue
            lr0, lc0 = gr0 - r0, gc0 - c0
            lr1, lc1 = gr1 - r0, gc1 - c0
            qa = (
                win[lr0:lr1, lc0 + 1 : lc1 + 1] * a.zr[gr0:gr1, gc0:gc1]
                + win[lr0:lr1, lc0 - 1 : lc1 - 1] * a.zb[gr0:gr1, gc0:gc1]
                + win[lr0 + 1 : lr1 + 1, lc0:lc1] * a.zu[gr0:gr1, gc0:gc1]
                + win[lr0 - 1 : lr1 - 1, lc0:lc1] * a.zv[gr0:gr1, gc0:gc1]
                + a.zz[gr0:gr1, gc0:gc1]
            )
            new[gr0:gr1, gc0:gc1] = za[gr0:gr1, gc0:gc1] + RELAX * (
                qa - za[gr0:gr1, gc0:gc1]
            )
        za = new
    return za


def block_flops(grid: BlockGrid) -> float:
    """Floating-point operations one block contributes per sweep."""
    return float(grid.block_points * FLOPS_PER_POINT)


def total_flops(grid: BlockGrid, iterations: int) -> float:
    """Total kernel flops for a full run (all blocks, all sweeps)."""
    if iterations <= 0:
        raise ValidationError("iterations must be > 0")
    return block_flops(grid) * grid.n_blocks * iterations
