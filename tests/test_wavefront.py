"""Tests for the wavefront (pipelined) workload."""

import pytest

from repro.kernels.wavefront import WavefrontConfig, build_wavefront_program
from repro.orwl import Runtime
from repro.placement import bind_program
from repro.simulate.machine import Machine
from repro.util.validate import ValidationError


def run(cfg, topo, policy="treematch", seed=0):
    prog = build_wavefront_program(cfg)
    plan = bind_program(prog, topo, policy=policy)
    machine = Machine(topo, seed=seed)
    rt = Runtime(prog, machine, mapping=plan.mapping,
                 control_mapping=plan.control_mapping)
    return rt.run()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValidationError):
            WavefrontConfig(rows=0)
        with pytest.raises(ValidationError):
            WavefrontConfig(iterations=0)
        with pytest.raises(ValidationError):
            WavefrontConfig(cell_flops=0)

    def test_pipeline_depth(self):
        assert WavefrontConfig(rows=3, cols=5).pipeline_depth == 7


class TestProgramStructure:
    def test_op_and_location_counts(self):
        cfg = WavefrontConfig(rows=3, cols=3, iterations=1)
        prog = build_wavefront_program(cfg)
        assert prog.n_operations == 9
        # south: 2 rows x 3 cols; east: 3 rows x 2 cols
        assert len(prog.locations) == 6 + 6

    def test_corner_block_has_no_reads(self):
        cfg = WavefrontConfig(rows=2, cols=2, iterations=1)
        prog = build_wavefront_program(cfg)
        origin = prog.tasks["b0.0"].operations["main"]
        assert not origin.read_handles()
        assert len(origin.write_handles()) == 2
        sink = prog.tasks["b1.1"].operations["main"]
        assert len(sink.read_handles()) == 2
        assert not sink.write_handles()


class TestExecution:
    def test_completes_bound(self, small_topo):
        res = run(WavefrontConfig(rows=2, cols=4, iterations=3), small_topo)
        assert res.time > 0

    def test_completes_unbound(self, small_topo):
        cfg = WavefrontConfig(rows=2, cols=4, iterations=3)
        prog = build_wavefront_program(cfg)
        machine = Machine(small_topo, seed=1)
        res = Runtime(prog, machine).run()
        assert res.time > 0

    def test_pipeline_fill_visible(self, paper_topo_small):
        """Makespan ≈ (depth + iterations - 1) beats, so a deeper grid
        with the same per-sweep work takes longer."""
        shallow = run(
            WavefrontConfig(rows=1, cols=8, iterations=4, cell_flops=2e6),
            paper_topo_small,
        )
        deep = run(
            WavefrontConfig(rows=8, cols=1, iterations=4, cell_flops=2e6),
            paper_topo_small,
        )
        # 1x8 and 8x1 are symmetric: same depth, same time (sanity).
        assert shallow.time == pytest.approx(deep.time, rel=0.05)

    def test_makespan_scales_with_depth_plus_iterations(self, paper_topo_small):
        base = WavefrontConfig(rows=4, cols=4, iterations=2, cell_flops=4e6)
        more_iters = WavefrontConfig(rows=4, cols=4, iterations=6, cell_flops=4e6)
        t1 = run(base, paper_topo_small).time
        t2 = run(more_iters, paper_topo_small).time
        beat = (t2 - t1) / 4  # 4 extra sweeps => 4 extra beats
        depth = base.pipeline_depth
        expected_t1 = beat * (depth + base.iterations - 1)
        # The pipelined model predicts the makespan within ~25 %.
        assert t1 == pytest.approx(expected_t1, rel=0.25)

    def test_dataflow_traced(self, small_topo):
        cfg = WavefrontConfig(rows=2, cols=2, iterations=2)
        res = run(cfg, small_topo)
        assert res.tracer.volume_between("b0.0/main", "b0.1/main") > 0
        assert res.tracer.volume_between("b0.0/main", "b1.0/main") > 0
        # No diagonal communication in a wavefront.
        assert res.tracer.volume_between("b0.0/main", "b1.1/main") == 0.0

    def test_placement_affects_handoff_latency(self, paper_topo_small):
        """With tiny compute, the pipeline beat is the hand-off latency,
        so packing the chain locally (treematch) beats scattering it."""
        cfg = WavefrontConfig(rows=4, cols=8, iterations=6,
                              cell_flops=1e4, frontier_bytes=1 << 20)
        t_tm = run(cfg, paper_topo_small, policy="treematch").time
        t_rand = run(cfg, paper_topo_small, policy="random", seed=5).time
        assert t_tm < t_rand
