"""Top-down bottleneck analysis: where does the Bind-vs-NoBind gap go?

The paper's claim is a time *difference* between placements; this module
explains it.  Both runs' makespans are partitioned exactly by the
critical-walk attribution (:func:`repro.perf.critpath.attribute_makespan`)
into compute / transfer-by-level / lock-wait / runq / migration / idle
buckets, so the per-bucket differences **sum to the makespan gap by
construction** — no residual hand-waving.  Any daylight between the
trace-witnessed makespan and the experiment's measured time (e.g. a
final grant latency past the last span) lands in an explicit
``unattributed`` line, keeping the ledger closed against the *measured*
gap too.

The rendering is top-down in the Intel TMA sense: aggregate buckets
first (transfer, stall), their by-level / by-kind children indented
under them, sorted by contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.critpath import Attribution

#: Aggregate rows of the top-down view and the prefix that folds a
#: walk bucket into them.
_PARENTS = (
    ("compute", ("compute",)),
    ("transfer", ("transfer:", "transfer")),
    ("lock-wait", ("wait",)),
    ("runq", ("runq",)),
    ("migration", ("migration",)),
    ("idle", ("idle",)),
)


def _parent_of(bucket: str) -> str:
    for parent, prefixes in _PARENTS:
        for p in prefixes:
            if bucket == p or (p.endswith(":") and bucket.startswith(p)):
                return parent
    return bucket


@dataclass
class GapAttribution:
    """The decomposed time gap between a slow and a fast run.

    ``contributions`` maps each walk bucket to ``slow - fast`` seconds;
    positive means the bucket grew in the slow run.  ``gap`` is the
    makespan difference the buckets sum to; ``measured_gap`` the
    experiment-reported difference (equal to ``gap`` up to trace
    truncation), with the difference exposed as ``unattributed``.
    """

    slow_label: str
    fast_label: str
    slow_time: float
    fast_time: float
    contributions: dict[str, float] = field(default_factory=dict)
    measured_slow: float = 0.0
    measured_fast: float = 0.0

    @property
    def gap(self) -> float:
        return self.slow_time - self.fast_time

    @property
    def measured_gap(self) -> float:
        return self.measured_slow - self.measured_fast

    @property
    def attributed(self) -> float:
        return sum(self.contributions.values())

    @property
    def unattributed(self) -> float:
        return self.measured_gap - self.attributed

    def grouped(self) -> dict[str, dict[str, float]]:
        """``parent -> {bucket -> seconds}`` for top-down rendering."""
        out: dict[str, dict[str, float]] = {}
        for bucket, sec in self.contributions.items():
            out.setdefault(_parent_of(bucket), {})[bucket] = sec
        return out

    def to_json_dict(self) -> dict:
        return {
            "slow": self.slow_label,
            "fast": self.fast_label,
            "slow_time": self.slow_time,
            "fast_time": self.fast_time,
            "measured_slow": self.measured_slow,
            "measured_fast": self.measured_fast,
            "gap": self.gap,
            "measured_gap": self.measured_gap,
            "contributions": dict(sorted(self.contributions.items())),
            "unattributed": self.unattributed,
        }

    def render(self) -> str:
        gap = self.measured_gap
        head = (
            f"Top-down gap attribution: {self.slow_label} "
            f"({self.measured_slow:.6g} s) vs {self.fast_label} "
            f"({self.measured_fast:.6g} s) — gap {gap:.6g} s"
        )
        lines = [head, "=" * len(head)]

        def pct(sec: float) -> str:
            return f"{sec / gap:>7.1%}" if gap else f"{'-':>7}"

        groups = self.grouped()
        order = sorted(
            groups.items(),
            key=lambda kv: (-abs(sum(kv[1].values())), kv[0]),
        )
        for parent, children in order:
            total = sum(children.values())
            lines.append(f"  {parent:<22} {total:>+12.6g} s {pct(total)}")
            if len(children) > 1 or (
                len(children) == 1 and next(iter(children)) != parent
            ):
                for bucket, sec in sorted(
                    children.items(), key=lambda kv: (-abs(kv[1]), kv[0])
                ):
                    lines.append(f"    {bucket:<20} {sec:>+12.6g} s {pct(sec)}")
        # Float-summation dust (1e-17-ish) would render as a confusing
        # extra line; only a materially unexplained remainder shows.
        if abs(self.unattributed) > 1e-12 + 1e-9 * abs(gap):
            lines.append(
                f"  {'unattributed':<22} {self.unattributed:>+12.6g} s "
                f"{pct(self.unattributed)}"
            )
        lines.append(
            f"  {'sum of buckets':<22} {self.attributed:>+12.6g} s "
            f"(measured gap {gap:.6g} s)"
        )
        return "\n".join(lines)


def attribute_gap(
    slow: Attribution,
    fast: Attribution,
    slow_label: str = "slow",
    fast_label: str = "fast",
    measured_slow: float | None = None,
    measured_fast: float | None = None,
) -> GapAttribution:
    """Per-bucket difference of two walk attributions.

    Because each attribution partitions its run's makespan exactly, the
    contributions sum to ``slow.makespan - fast.makespan``; measured
    times (when given) only move the explicit ``unattributed`` line.
    """
    buckets = sorted(set(slow.buckets) | set(fast.buckets))
    contributions = {
        b: slow.buckets.get(b, 0.0) - fast.buckets.get(b, 0.0) for b in buckets
    }
    return GapAttribution(
        slow_label=slow_label,
        fast_label=fast_label,
        slow_time=slow.makespan,
        fast_time=fast.makespan,
        contributions=contributions,
        measured_slow=slow.makespan if measured_slow is None else measured_slow,
        measured_fast=fast.makespan if measured_fast is None else measured_fast,
    )
