"""Zero-copy shared-memory export of :class:`DistanceModel` tables.

A ``DistanceModel`` is dominated by two P × P tables (int16 LCA depths,
int8 LCA types) plus two flat per-level cost tables.  On the generated
mega-presets (512 sockets / 4096 PUs) that is tens of MB per process —
and every pool worker used to rebuild them from scratch under ``spawn``
or after an LRU eviction.

The parent of a parallel sweep exports each model's tables once into
:mod:`multiprocessing.shared_memory` segments and publishes a manifest
(segment names, shapes, dtypes) through the ``REPRO_SHM_MANIFEST``
environment variable, which both ``fork`` and ``spawn`` workers
inherit.  Workers attach the segments and wrap them in **read-only**
numpy views; :func:`repro.exec.cache.cached_distance_model` assembles a
model around them via :meth:`DistanceModel.from_tables` — zero copies,
no O(P²) LCA sweep, one physical copy of the tables machine-wide.

Lifecycle: the parent's :class:`SharedTopologyStore` owns the segments
— it creates, publishes, and finally closes *and unlinks* them (an
``atexit`` hook guarantees this even on crashes).  Workers only ever
attach and close; a worker dying mid-task can therefore never leak a
segment (``tests/test_exec.py`` pins this).  Attach failures of any
kind — manifest gone, segment unlinked, size mismatch — degrade to a
normal in-process rebuild, never an error.
"""

from __future__ import annotations

import atexit
import json
import os
from multiprocessing import shared_memory
from typing import Any, Optional

import numpy as np

#: Environment variable carrying the published manifest (JSON).
ENV_MANIFEST = "REPRO_SHM_MANIFEST"

#: DistanceModel attributes exported per model, in manifest order.
TABLE_NAMES = ("lca_depth", "lca_type", "lat_table", "bw_table")

#: Worker-side attachment cache: key -> (views, segments).  Keeping the
#: ``SharedMemory`` objects referenced keeps the mapped buffers alive
#: for as long as the views are.
_ATTACHED: dict[str, tuple[dict[str, np.ndarray], list]] = {}

#: Segment names created by this process (or inherited from a forking
#: parent).  Attaches to owned segments keep their resource-tracker
#: registration — the owner's unlink will unregister them exactly once.
_OWNED_NAMES: set[str] = set()


def shm_key(preset: str, args: tuple = (), costs: str = "default") -> str:
    """Manifest key of one machine spec (mirrors the model cache key)."""
    return f"{preset}|{','.join(str(a) for a in args)}|{costs}"


class SharedTopologyStore:
    """Parent-side owner of exported shared-memory table segments.

    Usable as a context manager; :meth:`close` is idempotent and also
    registered with ``atexit``, so segments are unlinked no matter how
    the sweep ends.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self.manifest: dict[str, dict[str, Any]] = {}
        self._published = False
        atexit.register(self.close)

    def export_model(self, key: str, model: Any) -> None:
        """Copy one model's tables into fresh segments under *key*."""
        if key in self.manifest:
            return
        entry: dict[str, Any] = {}
        for name in TABLE_NAMES:
            arr = np.ascontiguousarray(getattr(model, f"_{name}"))
            seg = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
            self._segments.append(seg)
            _OWNED_NAMES.add(seg.name)
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[:] = arr
            entry[name] = {
                "segment": seg.name,
                "shape": list(arr.shape),
                "dtype": str(arr.dtype),
            }
        self.manifest[key] = entry

    def publish(self) -> None:
        """Make the manifest visible to (future) worker processes."""
        os.environ[ENV_MANIFEST] = json.dumps(self.manifest, sort_keys=True)
        self._published = True

    def close(self) -> None:
        """Unpublish, close, and unlink every owned segment (idempotent)."""
        if self._published:
            os.environ.pop(ENV_MANIFEST, None)
            self._published = False
        segments, self._segments = self._segments, []
        self.manifest = {}
        for seg in segments:
            _OWNED_NAMES.discard(seg.name)
            try:
                seg.close()
            except Exception:
                pass
            try:
                seg.unlink()
            except Exception:
                pass

    def __enter__(self) -> "SharedTopologyStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _load_manifest() -> dict[str, dict[str, Any]]:
    raw = os.environ.get(ENV_MANIFEST)
    if not raw:
        return {}
    try:
        manifest = json.loads(raw)
        return manifest if isinstance(manifest, dict) else {}
    except Exception:
        return {}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    Non-owning processes must not leave the segment registered with
    their resource tracker: a ``spawn`` worker's private tracker would
    otherwise unlink it on worker exit, destroying it under the parent
    (the classic attach-registers problem before Python 3.13's
    ``track=False``).  Owned names (created here, or inherited by
    ``fork`` — where the tracker itself is shared and registration is
    idempotent) keep their registration so the owner's unlink balances
    it exactly once.
    """
    if name in _OWNED_NAMES:
        return shared_memory.SharedMemory(name=name)
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        seg = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        return seg


def attach_tables(key: str) -> Optional[dict[str, np.ndarray]]:
    """Read-only views of the published tables under *key*, or ``None``.

    ``None`` means "build locally": no manifest, unknown key, or the
    segments are already gone.  Successful attachments are cached per
    process, so repeated model constructions share one mapping.
    """
    cached = _ATTACHED.get(key)
    if cached is not None:
        return cached[0]
    entry = _load_manifest().get(key)
    if entry is None:
        return None
    views: dict[str, np.ndarray] = {}
    segments: list[shared_memory.SharedMemory] = []
    try:
        for name in TABLE_NAMES:
            spec = entry[name]
            seg = _attach_segment(spec["segment"])
            segments.append(seg)
            view: np.ndarray = np.ndarray(
                tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]), buffer=seg.buf
            )
            view.flags.writeable = False
            views[name] = view
    except Exception:
        for seg in segments:
            try:
                seg.close()
            except Exception:
                pass
        from repro.exec.cache import bump_stat

        bump_stat("shm_attach_fail")
        return None
    _ATTACHED[key] = (views, segments)
    return views


def detach_all() -> None:
    """Drop every cached attachment (tests; workers just exit)."""
    for _views, segments in _ATTACHED.values():
        for seg in segments:
            try:
                seg.close()
            except Exception:
                pass
    _ATTACHED.clear()
