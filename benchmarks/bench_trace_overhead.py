"""Tracing must stay cheap: traced runs within 1.3x of untraced.

The observability layer's contract (see ``repro.observe.tracer``) is one
``is None`` check per activity when disabled and one event construction
plus append when enabled.  This benchmark pins that contract with wall
time: the same medium LK23 simulation, traced and untraced, best-of-N
each (best-of, not mean, to shed scheduler noise on shared CI boxes).

The workload is deliberately medium-sized: on tiny runs fixed setup
costs dominate and the ratio is meaningless; on this one the simulator
executes a few thousand engine events per run.
"""

import time

from repro.core.api import run_lk23

CONFIG = dict(
    policy="treematch", topology="small-numa", n=4096, iterations=8, seed=0
)
ROUNDS = 5
MAX_RATIO = 1.3


def run_once(trace: bool) -> None:
    run_lk23(trace=trace, **CONFIG)


def best_of(trace: bool, rounds: int = ROUNDS) -> float:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        run_once(trace)
        times.append(time.perf_counter() - t0)
    return min(times)


def test_trace_overhead_within_bound(benchmark):
    # Warm both paths (imports, numpy, bytecode) before timing anything.
    run_once(False)
    run_once(True)
    untraced = best_of(False)
    traced = benchmark.pedantic(lambda: best_of(True), rounds=1, iterations=1)
    ratio = traced / untraced
    benchmark.extra_info["untraced_s"] = untraced
    benchmark.extra_info["traced_s"] = traced
    benchmark.extra_info["ratio"] = ratio
    assert ratio <= MAX_RATIO, (
        f"tracing overhead {ratio:.2f}x exceeds {MAX_RATIO}x "
        f"(untraced {untraced:.4f}s, traced {traced:.4f}s)"
    )


def test_untraced_machine_has_no_tracer_path():
    """The disabled path must not even allocate a tracer."""
    result = run_lk23(trace=False, **CONFIG)
    assert result.trace is None
