"""Profile-guided binding: map from a measured trace instead of statics.

The paper maps at launch time from the program's composition.  A natural
extension — and the ablation A5 counterpart — is to *profile* first:
run the application once unbound with tracing enabled, build the
communication matrix from what actually moved, and bind the production
run with it.  Useful when the composition under-specifies traffic
(data-dependent communication) at the cost of one profiling run.

Programs are single-use (their locations carry FIFO state), so the
entry point takes a zero-argument *program factory* and instantiates it
twice: once for the profiling run, once for the bound production plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.comm.matrix import CommMatrix
from repro.orwl.program import Program
from repro.orwl.runtime import RunResult, Runtime, RuntimeConfig
from repro.placement.affinity import traced_matrix
from repro.placement.binder import BindPlan, bind_program
from repro.simulate.machine import Machine
from repro.topology.tree import Topology
from repro.util.rng import SeedLike
from repro.util.validate import ValidationError


@dataclass
class ProfiledBind:
    """Everything the profile-then-bind workflow produced."""

    #: a fresh program instance, ready to run under ``plan``.
    program: Program
    #: the placement computed from the profiled matrix.
    plan: BindPlan
    #: the traced matrix the plan was computed from.
    matrix: CommMatrix
    #: the profiling run's result (unbound).
    profile_run: RunResult


def profile_and_bind(
    make_program: Callable[[], Program],
    topo: Topology,
    policy: str = "treematch",
    granularity: str = "task",
    seed: SeedLike = 0,
    runtime_config: Optional[RuntimeConfig] = None,
) -> ProfiledBind:
    """Run once unbound with tracing, then bind from the measured matrix.

    Parameters
    ----------
    make_program:
        Factory returning a *fresh* :class:`Program` on each call; both
        instances must declare identical operation names (they will, if
        the factory is deterministic).
    topo:
        The machine for both the profiling run and the plan.
    policy, granularity:
        Forwarded to :func:`repro.placement.binder.bind_program`.
    """
    profile_prog = make_program()
    config = runtime_config or RuntimeConfig()
    if not config.trace:
        raise ValidationError("profiling requires RuntimeConfig.trace=True")
    machine = Machine(topo, seed=seed)
    profile_run = Runtime(profile_prog, machine, config=config).run()
    assert profile_run.tracer is not None

    production_prog = make_program()
    if [op.name for op in production_prog.operations()] != [
        op.name for op in profile_prog.operations()
    ]:
        raise ValidationError(
            "program factory is not deterministic: operation names differ "
            "between the profiling and production instances"
        )
    matrix = traced_matrix(production_prog, profile_run.tracer)
    plan = bind_program(
        production_prog, topo, policy=policy, matrix=matrix, granularity=granularity
    )
    return ProfiledBind(
        program=production_prog, plan=plan, matrix=matrix, profile_run=profile_run
    )
