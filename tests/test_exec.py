"""The parallel sweep executor: determinism, crash recovery, caching.

The contract under test (see ``repro.exec``): a sweep's results are in
input order and bit-identical no matter how many workers ran it; worker
crashes are retried and, past the retry budget, the remainder finishes
serially in-process; ordinary task exceptions propagate unchanged.
"""

from __future__ import annotations

import os

import pytest

from repro.exec import (
    ExecError,
    SweepRunner,
    Task,
    cached_distance_model,
    cached_topology,
    clear_cache,
    derive_seed,
    machine_inputs,
    resolve_workers,
    run_sweep,
)
from repro.experiments.fig1 import Fig1Point, Fig1Result, run_fig1
from repro.util.validate import ValidationError

# ---------------------------------------------------------------------------
# Worker payloads — module-level so the pool can pickle them by reference.
# ---------------------------------------------------------------------------


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom at {x}")


def _crash_once(x: int, sentinel: str) -> int:
    """Die hard (os._exit — no exception, no cleanup) on the first call.

    The sentinel file records that the crash already happened, so the
    retried task succeeds: exactly one pool-breaking worker death.
    """
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("crashed")
        os._exit(42)
    return x * x


def _crash_always(x: int) -> int:
    os._exit(42)


class TestDeriveSeed:
    def test_stable_and_hash_seed_independent(self):
        # sha-256-based: the same inputs give the same seed in any process.
        assert derive_seed(0, "fig1", "openmp", 8) == derive_seed(0, "fig1", "openmp", 8)
        assert 0 <= derive_seed(123, "a") < 2**63

    def test_distinct_keys_distinct_seeds(self):
        seeds = {
            derive_seed(0, impl, c)
            for impl in ("a", "b", "c")
            for c in (8, 16, 32)
        }
        assert len(seeds) == 9

    def test_base_seed_matters(self):
        assert derive_seed(0, "x") != derive_seed(1, "x")


class TestResolveWorkers:
    def test_auto_is_positive(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)

    def test_explicit_passthrough(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            resolve_workers(-1)


class TestSweepRunnerOrdering:
    def test_serial_matches_comprehension(self):
        out = run_sweep(_square, [{"x": i} for i in range(10)], n_workers=1)
        assert out == [i * i for i in range(10)]

    def test_parallel_matches_serial(self):
        kwargs = [{"x": i} for i in range(13)]
        serial = run_sweep(_square, kwargs, n_workers=1)
        parallel = run_sweep(_square, kwargs, n_workers=2, chunk_size=3)
        assert parallel == serial

    def test_single_task_stays_in_process(self):
        runner = SweepRunner(n_workers=4)
        assert runner.map([Task(_square, {"x": 5})]) == [25]
        assert runner.last_stats["mode"] == "serial"

    def test_chunk_indices_cover_everything(self):
        runner = SweepRunner(n_workers=3, chunk_size=4)
        chunks = runner._chunk_indices(11)
        flat = [i for c in chunks for i in c]
        assert flat == list(range(11))
        assert all(len(c) <= 4 for c in chunks)

    def test_bad_config_rejected(self):
        with pytest.raises(ValidationError):
            SweepRunner(chunk_size=0)
        with pytest.raises(ValidationError):
            SweepRunner(max_retries=-1)
        with pytest.raises(ValidationError):
            run_sweep(_square, [{"x": 1}], labels=["a", "b"])


class TestProgressEvents:
    def test_event_envelope(self):
        events = []
        runner = SweepRunner(n_workers=1, on_event=events.append)
        runner.map([Task(_square, {"x": i}) for i in range(3)])
        kinds = [e.kind for e in events]
        assert kinds[0] == "sweep_start"
        assert kinds[-1] == "sweep_end"
        assert kinds.count("point_done") == 3
        assert events[-1].done == events[-1].total == 3

    def test_parallel_points_all_reported(self):
        events = []
        runner = SweepRunner(n_workers=2, chunk_size=2, on_event=events.append)
        runner.map([Task(_square, {"x": i}) for i in range(6)])
        assert sum(1 for e in events if e.kind == "point_done") == 6
        assert sum(1 for e in events if e.kind == "chunk_done") == 3


class TestErrorPaths:
    def test_task_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="boom at 2"):
            run_sweep(_boom, [{"x": 2}], n_workers=1)

    def test_task_exception_propagates_parallel(self):
        with pytest.raises(ValueError, match="boom"):
            run_sweep(_boom, [{"x": i} for i in range(4)], n_workers=2)

    def test_worker_crash_retried(self, tmp_path):
        """One worker death breaks the pool; the retry completes the sweep."""
        sentinel = str(tmp_path / "crashed")
        events = []
        runner = SweepRunner(
            n_workers=2, chunk_size=1, max_retries=1, on_event=events.append
        )
        tasks = [Task(_crash_once, {"x": i, "sentinel": sentinel}) for i in range(4)]
        assert runner.map(tasks) == [0, 1, 4, 9]
        assert runner.last_stats["crashes"] == 1
        assert runner.last_stats["serial_fallback"] is False
        kinds = [e.kind for e in events]
        assert "worker_crash" in kinds
        assert "retry" in kinds

    def test_crashes_exhaust_retries_then_serial_fallback(self, tmp_path):
        sentinel = str(tmp_path / "crashed")
        events = []
        runner = SweepRunner(
            n_workers=2, chunk_size=1, max_retries=0, on_event=events.append
        )
        tasks = [Task(_crash_once, {"x": i, "sentinel": sentinel}) for i in range(4)]
        assert runner.map(tasks) == [0, 1, 4, 9]
        assert runner.last_stats["serial_fallback"] is True
        assert "serial_fallback" in [e.kind for e in events]

    def test_fallback_disabled_raises(self):
        runner = SweepRunner(
            n_workers=2, chunk_size=1, max_retries=0, serial_fallback=False
        )
        with pytest.raises(ExecError, match="unfinished"):
            runner.map([Task(_crash_always, {"x": i}) for i in range(4)])


class TestWorkerCaches:
    def test_topology_cached_per_key(self):
        clear_cache()
        t1 = cached_topology("paper-smp", 2, 8)
        t2 = cached_topology("paper-smp", 2, 8)
        t3 = cached_topology("paper-smp", 4, 8)
        assert t1 is t2
        assert t1 is not t3

    def test_distance_model_cached_and_bound_to_topology(self):
        clear_cache()
        topo, dm = machine_inputs("paper-smp", 2, 8)
        assert dm is cached_distance_model("paper-smp", 2, 8)
        assert dm.topo is topo

    def test_cluster_costs_variant(self):
        from repro.topology.distance import CLUSTER_LEVEL_COSTS
        from repro.topology.objects import ObjType

        clear_cache()
        _, dm = machine_inputs("cluster", 2, 2, 4, costs="cluster")
        assert dm.level_costs[ObjType.MACHINE] == CLUSTER_LEVEL_COSTS[ObjType.MACHINE]

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValidationError):
            cached_topology("no-such-preset")


class TestFig1TimeIndex:
    def test_first_point_wins_like_linear_scan(self):
        r = Fig1Result()
        r.points.append(Fig1Point("openmp", 8, 1.5, 1.0, 0, 0.0))
        r.points.append(Fig1Point("openmp", 8, 9.9, 1.0, 0, 0.0))
        assert r.time_of("openmp", 8) == 1.5

    def test_index_follows_appends(self):
        r = Fig1Result()
        r.points.append(Fig1Point("openmp", 8, 1.5, 1.0, 0, 0.0))
        assert r.time_of("openmp", 8) == 1.5
        r.points.append(Fig1Point("openmp", 16, 0.9, 1.0, 0, 0.0))
        assert r.time_of("openmp", 16) == 0.9

    def test_missing_point_raises_keyerror(self):
        with pytest.raises(KeyError, match="no point"):
            Fig1Result().time_of("openmp", 8)


class TestSerialParallelDeterminism:
    """The headline guarantee: worker count never changes the science."""

    @pytest.fixture(scope="class")
    def sweeps(self):
        common = dict(
            core_counts=(8, 16), iterations=2, n=1024, seed=7, fingerprint=True
        )
        serial = run_fig1(n_workers=1, **common)
        parallel = run_fig1(n_workers=2, **common)
        return serial, parallel

    def test_same_point_order(self, sweeps):
        serial, parallel = sweeps
        assert [(p.implementation, p.n_cores) for p in serial.points] == [
            (p.implementation, p.n_cores) for p in parallel.points
        ]

    def test_metrics_bit_identical(self, sweeps):
        serial, parallel = sweeps
        for a, b in zip(serial.points, parallel.points):
            assert a.time == b.time  # == on floats: bit-exact, no tolerance
            assert a.local_fraction == b.local_fraction
            assert a.migrations == b.migrations
            assert a.remote_bytes == b.remote_bytes

    def test_determinism_fingerprints_identical(self, sweeps):
        serial, parallel = sweeps
        for a, b in zip(serial.points, parallel.points):
            assert a.fingerprint and a.fingerprint == b.fingerprint
