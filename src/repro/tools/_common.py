"""Shared argument handling for the CLI tools."""

from __future__ import annotations

import sys
from pathlib import Path

from repro.topology import presets, serialize
from repro.topology.builder import from_spec
from repro.topology.discover import discover
from repro.topology.tree import Topology


def resolve_topology(source: str) -> Topology:
    """Turn a CLI topology argument into a :class:`Topology`.

    Accepted forms, tried in order:

    * ``host`` — discover the running machine (Linux sysfs);
    * a preset name (``paper-smp``, ``dual-xeon``, ...);
    * a path to a JSON file produced by :mod:`repro.topology.serialize`;
    * an hwloc-style synthetic spec string (``"numa:2 core:4 pu:1"``).
    """
    if source == "host":
        topo = discover()
        if topo is None:
            sys.exit("error: host topology not discoverable on this system")
        return topo
    if source in presets.PRESETS:
        return presets.by_name(source)
    path = Path(source)
    if path.is_file():
        if path.suffix.lower() == ".xml":
            from repro.topology.hwloc_xml import load_hwloc_xml

            return load_hwloc_xml(path)
        return serialize.load(path)
    try:
        return from_spec(source)
    except Exception as exc:
        sys.exit(
            f"error: {source!r} is not a preset, file, or synthetic spec ({exc})"
        )
