"""Benchmark kernels: Livermore Kernel 23 and its implementations.

* :mod:`~repro.kernels.stencil` — block-grid geometry (blocks, halos,
  neighbour maps, frontier sizes).
* :mod:`~repro.kernels.lk23` — the numerical kernel: loop reference,
  vectorized Jacobi, and blocked-with-halo variants, proven equivalent
  by tests.
* :mod:`~repro.kernels.lk23_orwl` — the paper's ORWL decomposition
  (main + 8 frontier sub-ops per block).
* :mod:`~repro.kernels.openmp` — the fork-join (OpenMP-like) comparator
  with global barriers and master-node first-touch.

DAG workload families over :mod:`repro.tasks` (the dependency-graph
frontend):

* :mod:`~repro.kernels.cholesky` — tiled Cholesky (POTRF/TRSM/SYRK/
  GEMM), the Parla reference benchmark.
* :mod:`~repro.kernels.bfs` — level-synchronous BFS over generated
  irregular graphs with partitioned frontier exchange.
* :mod:`~repro.kernels.divconq` — skewed recursive divide-and-conquer
  (mergesort-shaped fat tree).
"""

from repro.kernels.stencil import ALL_DIRECTIONS, BlockGrid, Direction, CORNERS, EDGES
from repro.kernels.lk23 import (
    FLOPS_PER_POINT,
    RELAX,
    Lk23Arrays,
    block_flops,
    lk23_blocked,
    lk23_jacobi,
    lk23_jacobi_step,
    lk23_reference,
    make_arrays,
    total_flops,
)
from repro.kernels.lk23_orwl import Lk23Config, build_program, describe
from repro.kernels.openmp import OpenMpConfig, OpenMpResult, run_openmp_lk23
from repro.kernels import lk18
from repro.kernels.wavefront import WavefrontConfig, build_wavefront_program
from repro.kernels.cholesky import CholeskyConfig, build_cholesky_graph
from repro.kernels.bfs import BfsConfig, build_bfs_graph
from repro.kernels.divconq import DivConqConfig, build_divconq_graph

__all__ = [
    "ALL_DIRECTIONS",
    "BlockGrid",
    "Direction",
    "CORNERS",
    "EDGES",
    "FLOPS_PER_POINT",
    "RELAX",
    "Lk23Arrays",
    "block_flops",
    "lk23_blocked",
    "lk23_jacobi",
    "lk23_jacobi_step",
    "lk23_reference",
    "make_arrays",
    "total_flops",
    "Lk23Config",
    "build_program",
    "describe",
    "OpenMpConfig",
    "OpenMpResult",
    "run_openmp_lk23",
    "lk18",
    "WavefrontConfig",
    "build_wavefront_program",
    "CholeskyConfig",
    "build_cholesky_graph",
    "BfsConfig",
    "build_bfs_graph",
    "DivConqConfig",
    "build_divconq_graph",
]
