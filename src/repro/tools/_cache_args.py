"""Shared ``--cache-dir`` / ``--no-cache`` plumbing for the sweep CLIs.

Every sweep CLI defaults to incremental re-runs: placements and point
results are stored under ``.repro-cache/`` (see :mod:`repro.exec.cache`)
so repeating or extending a sweep only simulates the delta.  Results
are bit-identical either way; ``--no-cache`` is the cold-path escape
hatch that disables every tier.

The flags translate to :func:`repro.exec.cache.configure_cache`, which
speaks through environment variables so pool workers inherit the
setting no matter the start method.
"""

from __future__ import annotations

import argparse

from repro.exec.cache import DEFAULT_CACHE_DIR, configure_cache


def add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the standard cache flags on *parser*."""
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help="on-disk cache root for placements and point results; "
             "re-running a sweep only simulates what is not stored yet "
             f"(default {DEFAULT_CACHE_DIR}; results are bit-identical "
             "with or without it)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable every caching tier — placement memo, shared-memory "
             "topologies, point results — and recompute everything "
             "(the cold path the cached results are verified against)",
    )


def apply_cache_arguments(args: argparse.Namespace) -> None:
    """Apply the parsed flags to the process-wide cache configuration."""
    configure_cache(
        enabled=not args.no_cache,
        directory=None if args.no_cache else args.cache_dir,
    )
