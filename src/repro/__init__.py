"""repro — Topology-aware placement for the ORWL task-based model.

A full Python reproduction of *"Optimizing Locality by Topology-aware
Placement for a Task Based Programming Model"* (Gustedt, Jeannot,
Mansouri — IEEE CLUSTER 2016): the ORWL runtime, an hwloc-like topology
substrate, the TreeMatch-based mapping algorithm with the paper's
oversubscription and control-thread extensions, a discrete-event NUMA
machine simulator standing in for the 192-core SMP, and the Livermore
Kernel 23 evaluation (Figure 1) with an OpenMP-like comparator.

Quick start::

    from repro import run_lk23
    result = run_lk23(topology="small-numa", policy="treematch", iterations=3)
    print(result.time, result.metrics.local_fraction)

Subpackages: :mod:`repro.topology`, :mod:`repro.comm`,
:mod:`repro.treematch`, :mod:`repro.placement`, :mod:`repro.simulate`,
:mod:`repro.orwl`, :mod:`repro.kernels`, :mod:`repro.experiments`,
:mod:`repro.core`.
"""

from repro.core.api import (
    ExperimentConfig,
    ExperimentResult,
    compare_policies,
    run_lk23,
)

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "compare_policies",
    "run_lk23",
    "__version__",
]
