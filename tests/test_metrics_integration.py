"""Integration + acceptance tests for ``repro.metrics``.

The acceptance-critical case is byte determinism: with metrics enabled,
the *stable* snapshot of a Figure-1 sweep must be byte-identical
between serial and parallel execution and between the batched and
scalar engines.  Also here: the observe-exporter-under-parallel-sweep
satellite (JSONL interleaving from pool workers must never corrupt the
stream) and end-to-end runs of the ``bench history`` drift gate.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.exec.runner import SweepRunner, Task
from repro.experiments.fig1 import run_fig1
from repro.metrics import core
from repro.observe import Tracer, dumps_jsonl, read_jsonl
from repro.simulate.machine import Machine
from repro.simulate.syscalls import Compute, Receive, Wait
from repro.topology import presets


@pytest.fixture(autouse=True)
def _clean_metrics(monkeypatch):
    monkeypatch.delenv(core.ENV_METRICS, raising=False)
    core.reset_registry()
    was = core.is_enabled()
    core.set_enabled(False)
    yield
    core.set_enabled(was)
    core.reset_registry()


def _stable_fig1(n_workers: int, engine_mode: str | None = None) -> str:
    core.reset_registry()
    core.enable()
    run_fig1(
        core_counts=(8,),
        iterations=2,
        n=256,
        seed=0,
        n_workers=n_workers,
        fingerprint=True,
        seeds=2,
        engine_mode=engine_mode,
        point_cache=False,
    )
    return core.registry().to_json(stable_only=True)


class TestStableSnapshotDeterminism:
    def test_serial_equals_parallel(self):
        serial = _stable_fig1(n_workers=1)
        parallel = _stable_fig1(n_workers=2)
        assert serial == parallel
        # and the snapshot is not trivially empty
        metrics = json.loads(serial)["metrics"]
        assert metrics["sim_runs_total"]["value"] > 0
        assert metrics["sweep_points_total"]["value"] == 6  # 3 impls × 2 seeds

    def test_batched_equals_scalar(self):
        assert _stable_fig1(1, "batched") == _stable_fig1(1, "scalar")

    def test_unstable_metrics_exist_but_are_excluded(self):
        core.enable()
        run_fig1(
            core_counts=(8,), iterations=1, n=128, seed=0,
            n_workers=1, point_cache=False,
        )
        reg = core.registry()
        full = reg.snapshot()["metrics"]
        stable = reg.snapshot(stable_only=True)["metrics"]
        assert "engine_run_wall_seconds" in full  # wall clock: recorded
        assert "engine_run_wall_seconds" not in stable  # ...but unstable
        assert "sweep_last_wall_seconds" in full  # gauge
        assert "sweep_last_wall_seconds" not in stable


class TestRuntimeInstrumentation:
    def _machine(self, topo, tracer=None):
        machine = Machine(topo, tracer=tracer)
        ready = machine.new_event("ready")
        prod = machine.add_thread("producer", bound_pu_os=0)
        cons = machine.add_thread("consumer", bound_pu_os=4)

        def producer():
            yield Compute(1e-3)
            ready.fire()

        def consumer():
            yield Wait(ready)
            yield Receive(prod, 1e6)

        machine.set_body(prod, producer())
        machine.set_body(cons, consumer())
        return machine

    def test_machine_run_records_metrics(self, small_topo):
        core.enable()
        machine = self._machine(small_topo)
        machine.run()
        reg = core.registry()
        assert reg.counter("sim_runs_total").value == 1
        assert reg.counter("sim_events_total").value == machine.engine.events_fired
        assert machine.engine.metrics_sink is not None  # cohort sink wired
        assert reg.get("engine_cohort_size") is not None

    def test_tracer_bridges_orwl_events(self, small_topo):
        core.enable()
        tracer = Tracer()
        machine = self._machine(small_topo, tracer=tracer)
        machine.run()
        reg = core.registry()
        counts = tracer.counts()
        assert reg.counter("orwl_waits_total").value == counts["wait"]
        assert reg.counter("orwl_transfers_total").value == counts["transfer"]
        assert reg.counter("orwl_transfer_bytes_total").value == int(1e6)

    def test_disabled_run_records_nothing(self, small_topo):
        machine = self._machine(small_topo)
        assert machine.engine.metrics_sink is None
        machine.run()
        assert len(core.registry()) == 0

    def test_placement_service_slo_and_health(self, paper_topo_small,
                                              stencil_matrix):
        from repro.placement.service import PlacementService

        core.enable()
        service = PlacementService(paper_topo_small)
        service.query_sync(stencil_matrix)  # cold
        service.query_sync(stencil_matrix)  # warm
        reg = core.registry()
        assert reg.counter("placement_queries_total").value == 2
        assert reg.counter("placement_memo_hits_total").value == 1
        assert reg.counter("placement_memo_misses_total").value == 1
        slo = service.slo()
        assert slo["warm"]["count"] == 1 and slo["cold"]["count"] == 1
        assert slo["warm"]["p50_s"] <= slo["warm"]["p99_s"]
        health = service.health()
        assert health["status"] == "ok" and health["queries_served"] == 2


# -- observe exporters under parallel sweeps -------------------------------


def _traced_point(seed: int, out_path: str = "") -> str:
    """Sweep task: run a traced machine, append its JSONL to *out_path*.

    The append is a single ``write`` of complete lines, so concurrent
    workers interleave at line granularity — which is exactly the
    property the test asserts survives a parallel sweep.
    """
    topo = presets.small_numa(2, 4)
    tracer = Tracer()
    machine = Machine(topo, tracer=tracer)
    ready = machine.new_event("ready")
    prod = machine.add_thread(f"producer{seed}", bound_pu_os=0)
    cons = machine.add_thread(f"consumer{seed}", bound_pu_os=4)

    def producer():
        yield Compute(1e-3 * (seed + 1))
        ready.fire()

    def consumer():
        yield Wait(ready)
        yield Receive(prod, 1e5 * (seed + 1))

    machine.set_body(prod, producer())
    machine.set_body(cons, consumer())
    machine.run()
    text = dumps_jsonl(tracer.events)
    if out_path:
        with open(out_path, "a") as fh:
            fh.write(text)
    return text


class TestObserveExportersUnderParallelSweeps:
    def test_jsonl_interleaving_not_corrupted(self, tmp_path):
        shared = str(tmp_path / "interleaved.jsonl")
        tasks = [
            Task(_traced_point, {"seed": s, "out_path": shared}, label=f"t{s}")
            for s in range(8)
        ]
        runner = SweepRunner(n_workers=4, chunk_size=1)
        texts = runner.map(tasks)

        # every line of the shared file parses; no torn or merged lines
        events = read_jsonl(shared)
        expected = sum(t.count("\n") for t in texts)
        assert len(events) == expected
        with open(shared) as fh:
            for line in fh:
                json.loads(line)  # would raise on corruption

        # per-task streams reconstruct exactly from the interleaved file
        by_thread: dict[str, list] = {}
        for ev in events:
            if ev.thread:
                by_thread.setdefault(ev.thread, []).append(ev)
        for s, text in enumerate(texts):
            own = [e for e in read_jsonl_str(text) if e.thread]
            for ev in own:
                assert ev in by_thread[ev.thread]

    def test_parallel_jsonl_matches_serial(self, tmp_path):
        serial = SweepRunner(n_workers=1).map(
            [Task(_traced_point, {"seed": s}) for s in range(4)]
        )
        parallel = SweepRunner(n_workers=2).map(
            [Task(_traced_point, {"seed": s}) for s in range(4)]
        )
        assert serial == parallel  # byte-for-byte, order preserved


def read_jsonl_str(text: str):
    from repro.observe import loads_jsonl

    return loads_jsonl(text)


# -- bench history end-to-end ----------------------------------------------


def _report(stamp: str, warm_p50: float) -> dict:
    return {
        "meta": {"timestamp": stamp},
        "placement_service": {"warm_p50_s": warm_p50,
                              "queries_per_s": 3000.0},
        "cohort": {"batched_over_scalar": 20.0},
    }


class TestBenchHistoryCli:
    def test_injected_drift_fails_the_gate(self, tmp_path, capsys):
        from repro.tools.bench import main

        for i in range(8):
            warm = 1e-4 if i < 4 else 1.3e-4  # +30% in the newer half
            (tmp_path / f"BENCH_{i}.json").write_text(
                json.dumps(_report(f"2026-02-0{i + 1}T00:00:00", warm))
            )
        rc = main(["history", "--dir", str(tmp_path), "--baseline", ""])
        out = capsys.readouterr().out
        assert rc == 1
        assert "DRIFT" in out and "warm_p50_s" in out
        # --no-check reports but stays green for non-gating use
        assert main(["history", "--dir", str(tmp_path), "--baseline", "",
                     "--no-check"]) == 0

    def test_committed_baseline_alone_is_green(self, capsys):
        from repro.tools.bench import main

        assert os.path.exists("benchmarks/baseline_ci.json")
        rc = main(["history", "--dir", "/nonexistent",
                   "--baseline", "benchmarks/baseline_ci.json"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trajectory green" in out

    def test_json_output_parses(self, tmp_path, capsys):
        from repro.tools.bench import main

        (tmp_path / "BENCH_0.json").write_text(
            json.dumps(_report("2026-02-01T00:00:00", 1e-4))
        )
        rc = main(["history", "--dir", str(tmp_path), "--baseline", "",
                   "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True and report["n_reports"] == 1


class TestFig1MetricsFlag:
    def test_fig1_tool_publishes_snapshot(self, tmp_path, capsys):
        from repro.metrics.bus import read_snapshot
        from repro.tools.fig1 import main

        out = str(tmp_path / "live.json")
        rc = main(["--cores", "8", "--iterations", "1", "--n", "128",
                   "--workers", "1", "--metrics", out, "--no-cache"])
        assert rc == 0
        snap = read_snapshot(out)
        assert snap is not None
        m = snap["metrics"]
        assert m["sweep_progress_done"]["value"] == m["sweep_progress_total"]["value"] > 0
        assert m["sim_runs_total"]["value"] > 0
