"""Simulated-annealing mapping baseline.

A placement-quality reference point for the ablations: anneal the
thread → PU assignment directly against the hop-bytes objective.  Far
more expensive than TreeMatch (thousands of cost evaluations instead of
one bottom-up pass) but approaches the attainable optimum on small
instances, so it bounds how much quality the hierarchical heuristic
leaves on the table.

Only the assignment *permutation* is annealed: entity *e* sits on slot
``perm[e]``, slots being PU logical indices repeated ``ceil(n/P)``
times (the oversubscription layout TreeMatch itself uses).  Moves are
slot swaps; the incremental cost delta of a swap is O(n), so a full
anneal is O(moves · n).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.comm.matrix import CommMatrix
from repro.topology.distance import hop_distance_matrix
from repro.topology.tree import Topology
from repro.treematch.mapping import Mapping
from repro.util.rng import SeedLike, make_rng
from repro.util.validate import ValidationError


@dataclass(frozen=True)
class AnnealConfig:
    """SA schedule: geometric cooling from an automatic T0."""

    moves: int = 20_000
    cooling: float = 0.999
    #: initial temperature as a fraction of the initial cost.
    t0_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.moves <= 0:
            raise ValidationError("moves must be > 0")
        if not 0.0 < self.cooling < 1.0:
            raise ValidationError("cooling must be in (0, 1)")
        if self.t0_fraction <= 0:
            raise ValidationError("t0_fraction must be > 0")


def _cost(vals: np.ndarray, hops: np.ndarray, pu_of: np.ndarray) -> float:
    """Total volume-weighted hop distance of an assignment."""
    return float((vals * hops[np.ix_(pu_of, pu_of)]).sum()) / 2.0


def anneal_mapping(
    topo: Topology,
    matrix: CommMatrix,
    config: AnnealConfig | None = None,
    seed: SeedLike = 0,
) -> Mapping:
    """Anneal a thread → PU mapping minimizing hop-bytes.

    Supports oversubscription (slots wrap around the PU list).  Returns
    a :class:`Mapping` in PU os indices, like every other policy.
    """
    config = config or AnnealConfig()
    n = matrix.order
    if n == 0:
        raise ValidationError("cannot map an empty matrix")
    rng = make_rng(seed)
    hops = hop_distance_matrix(topo).astype(np.float64)
    pus = topo.pus()
    n_pus = len(pus)
    # slot s -> PU logical index (oversubscription wraps).
    n_slots = n_pus * math.ceil(n / n_pus)
    slot_pu = np.array([s % n_pus for s in range(n_slots)], dtype=np.intp)

    vals = np.array(matrix.values)
    # entity e occupies slot perm[e]
    perm = rng.permutation(n_slots)[:n].astype(np.intp)
    pu_of = slot_pu[perm]
    cost = _cost(vals, hops, pu_of)
    best_cost = cost
    best_pu_of = pu_of.copy()
    temp = max(cost * config.t0_fraction, 1e-12)
    free_slots = list(set(range(n_slots)) - set(perm.tolist()))

    for _ in range(config.moves):
        a = int(rng.integers(n))
        move_to_free = bool(free_slots) and rng.random() < 0.3
        if move_to_free:
            # Relocate entity a to an unoccupied slot.
            fi = int(rng.integers(len(free_slots)))
            new_slot = free_slots[fi]
            old_pu, new_pu = int(pu_of[a]), int(slot_pu[new_slot])
            if old_pu == new_pu:
                continue
            diff = hops[new_pu] - hops[old_pu]  # per-PU distance change
            delta = float(vals[a] @ diff[pu_of])  # diagonal is zero
        else:
            b = int(rng.integers(n))
            if a == b:
                continue
            pa, pb = int(pu_of[a]), int(pu_of[b])
            if pa == pb:
                continue
            diff = hops[pb] - hops[pa]
            da = float(vals[a] @ diff[pu_of])
            db = float(vals[b] @ (-diff)[pu_of])
            # The a-b edge's distance is unchanged by a swap: remove its
            # (spurious) contribution from both sides.
            da -= float(vals[a, b] * diff[pu_of[b]])
            db -= float(vals[b, a] * (-diff)[pu_of[a]])
            delta = da + db

        if delta <= 0 or rng.random() < math.exp(-delta / temp):
            if move_to_free:
                free_slots[fi] = int(perm[a])
                perm[a] = new_slot
            else:
                perm[a], perm[b] = perm[b], perm[a]
            pu_of = slot_pu[perm]
            cost += delta
            if cost < best_cost - 1e-9:
                # Re-evaluate exactly at improvements to kill FP drift.
                cost = _cost(vals, hops, pu_of)
                if cost < best_cost:
                    best_cost = cost
                    best_pu_of = pu_of.copy()
        temp *= config.cooling

    os_of_logical = [pu.os_index for pu in pus]
    return Mapping(
        tuple(os_of_logical[int(p)] for p in best_pu_of),
        labels=matrix.labels,
        policy="anneal",
    )
