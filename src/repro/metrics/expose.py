"""Prometheus text exposition (format 0.0.4) + a strict parser.

The renderer emits one ``# HELP`` / ``# TYPE`` pair per metric name
(names sorted, then label sets sorted), histogram ``_bucket`` lines
with cumulative counts and an explicit ``+Inf`` bucket, and ``_sum`` /
``_count`` series.  :func:`parse_exposition` is the strict
round-tripping validator the test suite uses: it rejects malformed
names, unescaped label values, samples preceding their ``TYPE`` line,
and non-monotonic histogram buckets.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

from repro.metrics.core import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricRegistry,
    _LABEL_RE,
    _NAME_RE,
)
from repro.util.validate import ValidationError

__all__ = ["ExpositionError", "parse_exposition", "render_text"]


class ExpositionError(ValidationError):
    """Raised by :func:`parse_exposition` on any format violation."""


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(pairs: Iterable[tuple[str, str]]) -> str:
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return f"{{{inner}}}" if inner else ""


def render_text(registry: MetricRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    by_name: dict[str, list[Metric]] = {}
    for metric in registry:
        by_name.setdefault(metric.name, []).append(metric)
    lines: list[str] = []
    for name in sorted(by_name):
        group = by_name[name]
        kind = group[0].kind
        help_text = next((m.help for m in group if m.help), "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        else:
            lines.append(f"# HELP {name}")
        lines.append(f"# TYPE {name} {kind}")
        for metric in group:
            if isinstance(metric, (Counter, Gauge)):
                lines.append(
                    f"{name}{_label_str(metric.labels)} "
                    f"{_fmt_value(metric.value)}"
                )
            elif isinstance(metric, Histogram):
                cum = 0
                for bound, n in zip(metric.bounds, metric.counts):
                    cum += n
                    pairs = metric.labels + (("le", _fmt_value(bound)),)
                    lines.append(f"{name}_bucket{_label_str(pairs)} {cum}")
                pairs = metric.labels + (("le", "+Inf"),)
                lines.append(
                    f"{name}_bucket{_label_str(pairs)} {metric.count}"
                )
                lines.append(
                    f"{name}_sum{_label_str(metric.labels)} "
                    f"{_fmt_value(metric.sum)}"
                )
                lines.append(
                    f"{name}_count{_label_str(metric.labels)} {metric.count}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def _parse_labels(raw: str, line_no: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(raw):
        j = raw.find("=", i)
        if j < 0:
            raise ExpositionError(f"line {line_no}: malformed label pair")
        key = raw[i:j]
        if not _LABEL_RE.match(key) and key != "le":
            raise ExpositionError(f"line {line_no}: bad label name {key!r}")
        if j + 1 >= len(raw) or raw[j + 1] != '"':
            raise ExpositionError(f"line {line_no}: label value not quoted")
        i = j + 2
        value = []
        while i < len(raw):
            ch = raw[i]
            if ch == "\\":
                if i + 1 >= len(raw):
                    raise ExpositionError(
                        f"line {line_no}: dangling escape in label value"
                    )
                nxt = raw[i + 1]
                value.append(
                    {"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt)
                )
                i += 2
            elif ch == '"':
                break
            else:
                value.append(ch)
                i += 1
        else:
            raise ExpositionError(f"line {line_no}: unterminated label value")
        labels[key] = "".join(value)
        i += 1  # closing quote
        if i < len(raw):
            if raw[i] != ",":
                raise ExpositionError(
                    f"line {line_no}: expected ',' between labels"
                )
            i += 1
    return labels


def _parse_value(raw: str, line_no: int) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise ExpositionError(
            f"line {line_no}: bad sample value {raw!r}"
        ) from None


def parse_exposition(text: str) -> dict[str, dict[str, Any]]:
    """Strictly parse Prometheus exposition text.

    Returns ``{name: {"type": ..., "help": ..., "samples": [(suffix,
    labels, value), ...]}}`` where ``suffix`` is ``""``, ``"_bucket"``,
    ``"_sum"`` or ``"_count"``.  Raises :class:`ExpositionError` on any
    violation of the text format.
    """
    families: dict[str, dict[str, Any]] = {}
    # Cumulative-bucket monotonicity check state per (name, labelset).
    last_bucket: dict[tuple[str, str], float] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line != line.strip() or "\t" in line.split(" ", 1)[0]:
            raise ExpositionError(f"line {line_no}: stray whitespace")
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ExpositionError(f"line {line_no}: malformed HELP")
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ExpositionError(
                    f"line {line_no}: bad metric name {name!r}"
                )
            fam = families.setdefault(
                name, {"type": None, "help": "", "samples": []}
            )
            fam["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ExpositionError(f"line {line_no}: malformed TYPE")
            name, kind = parts[2], parts[3]
            if not _NAME_RE.match(name):
                raise ExpositionError(
                    f"line {line_no}: bad metric name {name!r}"
                )
            if kind not in ("counter", "gauge", "histogram", "untyped"):
                raise ExpositionError(
                    f"line {line_no}: unknown metric type {kind!r}"
                )
            fam = families.setdefault(
                name, {"type": None, "help": "", "samples": []}
            )
            if fam["samples"]:
                raise ExpositionError(
                    f"line {line_no}: TYPE after samples for {name!r}"
                )
            fam["type"] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        # Sample line: name[{labels}] value
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ExpositionError(f"line {line_no}: unbalanced braces")
            sample_name = line[:brace]
            labels = _parse_labels(line[brace + 1 : close], line_no)
            rest = line[close + 1 :].strip()
        else:
            sample_name, _, rest = line.partition(" ")
            labels = {}
            rest = rest.strip()
        if not _NAME_RE.match(sample_name):
            raise ExpositionError(
                f"line {line_no}: bad sample name {sample_name!r}"
            )
        if not rest or " " in rest:
            # Timestamps are legal Prometheus but we never emit them;
            # strict mode rejects anything but a single value token.
            raise ExpositionError(
                f"line {line_no}: expected exactly one value"
            )
        value = _parse_value(rest, line_no)
        base, suffix = sample_name, ""
        for cand in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(cand)]
            if (
                sample_name.endswith(cand)
                and trimmed in families
                and families[trimmed]["type"] == "histogram"
            ):
                base, suffix = trimmed, cand
                break
        fam = families.get(base)
        if fam is None or fam["type"] is None:
            raise ExpositionError(
                f"line {line_no}: sample {sample_name!r} before its TYPE"
            )
        if suffix == "_bucket":
            if "le" not in labels:
                raise ExpositionError(
                    f"line {line_no}: histogram bucket missing 'le'"
                )
            key = (
                base,
                ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items()) if k != "le"
                ),
            )
            prev = last_bucket.get(key, -math.inf)
            if value < prev:
                raise ExpositionError(
                    f"line {line_no}: non-monotonic histogram buckets for "
                    f"{base!r}"
                )
            last_bucket[key] = value
        fam["samples"].append((suffix, labels, value))
    for name, fam in families.items():
        if fam["type"] is None:
            raise ExpositionError(f"metric {name!r} has samples but no TYPE")
    return families
