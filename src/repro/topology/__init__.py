"""hwloc-like hardware topology substrate.

The paper uses HWLOC to obtain "a portable abstraction of the
architecture".  This package is that abstraction, built synthetically:

* :mod:`~repro.topology.cpuset` — PU index bitmaps (hwloc_bitmap).
* :mod:`~repro.topology.objects` — typed objects (Machine/NUMANode/
  Package/L3/L2/L1/Core/PU) with cache and memory attributes.
* :mod:`~repro.topology.tree` — the finalized, queryable topology tree.
* :mod:`~repro.topology.builder` — programmatic and spec-string builders.
* :mod:`~repro.topology.presets` — the paper's 24×8 SMP and friends.
* :mod:`~repro.topology.generate` — declarative machine specs and the
  generated mega-topology presets of the scaling study.
* :mod:`~repro.topology.distance` — hop/LCA/latency/bandwidth matrices.
* :mod:`~repro.topology.query` — hwloc-flavoured convenience queries.
* :mod:`~repro.topology.serialize` — JSON round-trip.
"""

from repro.topology.cpuset import CpuSet, EMPTY
from repro.topology.objects import (
    CacheAttributes,
    MemoryAttributes,
    ObjType,
    TopologyObject,
)
from repro.topology.tree import Topology, TopologyError
from repro.topology.builder import TopologyBuilder, from_spec, flat_topology
from repro.topology.distance import (
    DistanceModel,
    LinkCosts,
    DEFAULT_LEVEL_COSTS,
    CLUSTER_LEVEL_COSTS,
    cluster_distance_model,
    hop_distance_matrix,
    lca_depth_matrix,
)
from repro.topology.generate import (
    LevelDef,
    MachineSpec,
    SCALING_SPECS,
    build as build_spec,
    scaling_spec,
    smp,
    spec_dumps,
    spec_from_dict,
    spec_loads,
    spec_to_dict,
    two_tier,
)
from repro.topology.restrict import restrict, restrict_to_objects, restrict_without
from repro.topology import generate, presets, query, serialize

__all__ = [
    "CpuSet",
    "EMPTY",
    "CacheAttributes",
    "MemoryAttributes",
    "ObjType",
    "TopologyObject",
    "Topology",
    "TopologyError",
    "TopologyBuilder",
    "from_spec",
    "flat_topology",
    "DistanceModel",
    "LinkCosts",
    "DEFAULT_LEVEL_COSTS",
    "CLUSTER_LEVEL_COSTS",
    "cluster_distance_model",
    "hop_distance_matrix",
    "lca_depth_matrix",
    "LevelDef",
    "MachineSpec",
    "SCALING_SPECS",
    "build_spec",
    "scaling_spec",
    "smp",
    "spec_dumps",
    "spec_from_dict",
    "spec_loads",
    "spec_to_dict",
    "two_tier",
    "restrict",
    "restrict_to_objects",
    "restrict_without",
    "generate",
    "presets",
    "query",
    "serialize",
]
