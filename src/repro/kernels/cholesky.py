"""Tiled (right-looking) Cholesky factorization as a task DAG.

The Parla reference benchmark: an ``b x b`` lower-triangular tile grid
of an SPD matrix factored by the classic four-kernel decomposition —

* ``POTRF(k)``   — factor diagonal tile ``A[k][k]``;
* ``TRSM(i,k)``  — triangular solve of panel tile ``A[i][k]``;
* ``SYRK(k,i)``  — symmetric rank-update of diagonal ``A[i][i]``;
* ``GEMM(i,j,k)`` — update of interior tile ``A[i][j]``.

Dependencies are *inferred* from the read/write regions (one region per
lower-triangular tile), which is the point of the frontend: the DAG
below is the textbook one, but nobody writes it down — ``spawn`` order
plus data declarations produce it.  The resulting graph has
``b*(b+1)*(b+2)/6 + O(b^2)`` tasks, a critical path through the
diagonal (POTRF chain), and a communication matrix dominated by panel
broadcast — a genuinely different shape from the paper's stencils.

Costs use the standard flop counts for tiles of order ``t``
(``t^3/3``, ``t^3``, ``t^3``, ``2 t^3``) and payloads of ``t*t*8``
bytes per tile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tasks.graph import Region, TaskGraph, TaskSpace
from repro.util.validate import ValidationError, check_positive


@dataclass(frozen=True)
class CholeskyConfig:
    """Shape of a tiled-Cholesky instance.

    ``blocks`` is the tile-grid order *b*; ``tile`` the per-tile order
    *t* (the matrix is ``(b*t) x (b*t)`` doubles).
    """

    blocks: int = 4
    tile: int = 128

    def __post_init__(self) -> None:
        check_positive(self.blocks, "blocks")
        check_positive(self.tile, "tile")

    @property
    def tile_bytes(self) -> float:
        return float(self.tile * self.tile * 8)

    @property
    def n_tasks(self) -> int:
        b = self.blocks
        # POTRF: b, TRSM: b(b-1)/2, SYRK: b(b-1)/2, GEMM: b(b-1)(b-2)/6.
        return b + b * (b - 1) + b * (b - 1) * (b - 2) // 6


def build_cholesky_graph(config: CholeskyConfig | None = None) -> TaskGraph:
    """Build the tiled-Cholesky DAG for *config* (default 4x4 tiles)."""
    cfg = config or CholeskyConfig()
    b = cfg.blocks
    t = float(cfg.tile)
    g = TaskGraph(f"cholesky-b{b}-t{cfg.tile}")

    # One data region per lower-triangular tile A[i][j], i >= j.
    tiles: dict[tuple[int, int], Region] = {}
    for i in range(b):
        for j in range(i + 1):
            tiles[i, j] = g.region(f"A[{i}][{j}]", nbytes=cfg.tile_bytes)

    potrf: TaskSpace = g.space("POTRF")
    trsm: TaskSpace = g.space("TRSM")
    syrk: TaskSpace = g.space("SYRK")
    gemm: TaskSpace = g.space("GEMM")

    for k in range(b):
        g.spawn(
            potrf[k],
            flops=t**3 / 3.0,
            reads=[tiles[k, k]],
            writes=[tiles[k, k]],
        )
        for i in range(k + 1, b):
            g.spawn(
                trsm[i, k],
                flops=t**3,
                reads=[tiles[k, k], tiles[i, k]],
                writes=[tiles[i, k]],
            )
        for i in range(k + 1, b):
            g.spawn(
                syrk[k, i],
                flops=t**3,
                reads=[tiles[i, k], tiles[i, i]],
                writes=[tiles[i, i]],
            )
            for j in range(k + 1, i):
                g.spawn(
                    gemm[i, j, k],
                    flops=2.0 * t**3,
                    reads=[tiles[i, k], tiles[j, k], tiles[i, j]],
                    writes=[tiles[i, j]],
                )

    if g.n_tasks != cfg.n_tasks:
        raise ValidationError(
            f"cholesky task count {g.n_tasks} != predicted {cfg.n_tasks}"
        )
    return g
