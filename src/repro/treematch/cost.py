"""Mapping quality metrics.

These are the standard process-placement objectives used to compare
TreeMatch against baselines (ablation A1 in DESIGN.md):

* :func:`hop_bytes` — Σ volume(i,j) × tree-hop-distance(pu_i, pu_j);
* :func:`comm_time_estimate` — Σ volume / bandwidth + latency per pair,
  using the physical :class:`~repro.topology.distance.DistanceModel`;
* :func:`numa_cut` — bytes that must cross NUMA-node boundaries;
* :func:`cache_share_fraction` — fraction of the total volume exchanged
  under a shared cache (same L3 or closer).

All take a :class:`~repro.treematch.mapping.Mapping` plus the
communication matrix; unbound threads (PU = -1) are charged worst-case
(machine-level) distance, matching the pessimistic assumption that the
OS may put them anywhere.
"""

from __future__ import annotations

from repro.comm.matrix import CommMatrix
from repro.topology.distance import DistanceModel
from repro.topology.objects import ObjType
from repro.topology.tree import Topology
from repro.treematch.mapping import Mapping
from repro.util.validate import ValidationError


def _check(mapping: Mapping, matrix: CommMatrix) -> None:
    if mapping.n_threads < matrix.order:
        raise ValidationError(
            f"mapping covers {mapping.n_threads} threads but matrix order is {matrix.order}"
        )


def hop_bytes(mapping: Mapping, matrix: CommMatrix, topo: Topology) -> float:
    """Total volume-weighted tree distance (lower is better)."""
    _check(mapping, matrix)
    model = DistanceModel(topo)
    hops = model.hop_matrix()
    max_hop = float(hops.max()) if hops.size else 0.0
    total = 0.0
    vals = matrix.values
    n = matrix.order
    for i in range(n):
        for j in range(i + 1, n):
            v = vals[i, j]
            if v == 0:
                continue
            pi, pj = mapping.pu(i), mapping.pu(j)
            if pi < 0 or pj < 0:
                total += v * max_hop
            else:
                li = model.logical_of_os(pi)
                lj = model.logical_of_os(pj)
                total += v * float(hops[li, lj])
    return total


def comm_time_estimate(
    mapping: Mapping, matrix: CommMatrix, model: DistanceModel
) -> float:
    """Aggregate pairwise transfer time under the physical cost model.

    A static estimate (no contention, no overlap): the sum over pairs of
    ``latency(level) + volume / bandwidth(level)``.  Correlates with,
    but is cheaper than, a full simulation.
    """
    _check(mapping, matrix)
    vals = matrix.values
    n = matrix.order
    worst_lat = float(model.latency_matrix().max())
    worst_bw = float(model.bandwidth_matrix().min())
    total = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            v = vals[i, j]
            if v == 0:
                continue
            pi, pj = mapping.pu(i), mapping.pu(j)
            if pi < 0 or pj < 0:
                total += worst_lat + v / worst_bw
            else:
                li = model.logical_of_os(pi)
                lj = model.logical_of_os(pj)
                total += model.transfer_time(li, lj, v)
    return total


def numa_cut(mapping: Mapping, matrix: CommMatrix, topo: Topology) -> float:
    """Bytes exchanged between threads on *different* NUMA nodes.

    The quantity the paper's strategy directly minimizes ("reducing the
    communication between the NUMA nodes").  Unbound threads count as
    off-node.
    """
    _check(mapping, matrix)
    if topo.nbobjs_by_type(ObjType.NUMANODE) == 0:
        return 0.0
    node_of: dict[int, int] = {}
    for pu in topo.pus():
        node = topo.numa_node_of(pu.os_index)
        node_of[pu.os_index] = node.logical_index if node else -1
    vals = matrix.values
    n = matrix.order
    total = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            v = vals[i, j]
            if v == 0:
                continue
            pi, pj = mapping.pu(i), mapping.pu(j)
            if pi < 0 or pj < 0 or node_of[pi] != node_of[pj]:
                total += v
    return total


def cache_share_fraction(
    mapping: Mapping, matrix: CommMatrix, topo: Topology
) -> float:
    """Fraction of volume exchanged under a shared cache (L3 or closer).

    The complementary objective the paper states ("optimising the shared
    caches inside each [NUMA node]").  Returns 0 for a zero matrix.
    """
    _check(mapping, matrix)
    model = DistanceModel(topo)
    cache_types = {ObjType.L1, ObjType.L2, ObjType.L3, ObjType.CORE}
    vals = matrix.values
    n = matrix.order
    total = 0.0
    shared = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            v = vals[i, j]
            if v == 0:
                continue
            total += v
            pi, pj = mapping.pu(i), mapping.pu(j)
            if pi < 0 or pj < 0:
                continue
            li = model.logical_of_os(pi)
            lj = model.logical_of_os(pj)
            if model.lca_type(li, lj) in cache_types:
                shared += v
    return shared / total if total > 0 else 0.0


def score_report(
    mapping: Mapping, matrix: CommMatrix, topo: Topology
) -> dict[str, float]:
    """All metrics in one dict (used by reports and benches)."""
    model = DistanceModel(topo)
    return {
        "hop_bytes": hop_bytes(mapping, matrix, topo),
        "comm_time_estimate": comm_time_estimate(mapping, matrix, model),
        "numa_cut": numa_cut(mapping, matrix, topo),
        "cache_share_fraction": cache_share_fraction(mapping, matrix, topo),
        "max_load": float(mapping.max_load()),
    }
