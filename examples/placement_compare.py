#!/usr/bin/env python3
"""Compare placement policies on the same workload and machine.

Runs LK23 under every registered policy on an 8-socket machine and
prints both the *static* mapping-quality metrics (hop-bytes, NUMA cut,
cache sharing) and the *dynamic* simulated processing time — showing
that the static scores predict the dynamic outcome.

Run:  python examples/placement_compare.py
"""

from repro.core import compare_policies
from repro.placement import report
from repro.placement.binder import task_matrix
from repro.kernels import Lk23Config, build_program
from repro.topology import presets

POLICIES = ("treematch", "compact", "scatter", "round-robin", "random", "nobind")


def main() -> None:
    topo = presets.paper_smp(8, 8)  # 64 cores
    print(f"Machine: {topo}")
    results = compare_policies(
        policies=POLICIES, topology=topo, iterations=3, n=16384, seed=0
    )

    print("\nDynamic results (simulated):")
    header = f"{'policy':<14} {'time (ms)':>10} {'local':>8} {'migrations':>11}"
    print(header)
    print("-" * len(header))
    for name in POLICIES:
        r = results[name]
        m = r.metrics
        print(
            f"{name:<14} {r.time * 1000:>10.2f} {m.local_fraction:>8.1%} "
            f"{m.migrations:>11d}"
        )

    # Static mapping-quality comparison over the same task matrix.
    cfg = Lk23Config(n=16384, grid_rows=8, grid_cols=8, iterations=3)
    prog = build_program(cfg)
    tmat = task_matrix(prog)
    placed = [
        results[name].plan.placed_mapping
        for name in POLICIES
        if results[name].plan.placed_mapping is not None
    ]
    print("\nStatic mapping-quality metrics (task matrix):")
    print(report.compare_policies(placed, tmat, topo))

    best = min(POLICIES, key=lambda n: results[n].time)
    print(f"\nFastest policy: {best}")


if __name__ == "__main__":
    main()
