"""Extension experiment E3 — heterogeneity: a half-speed socket.

The paper's machine is homogeneous; real deployments often are not.
This bench slows one socket of an 8-socket machine to half rate and
runs the bound LK23.  Expected physics: the stencil's round structure
gates every block on its slowest neighbour chain, so the whole run
degrades toward the slow socket's pace — static placement alone cannot
absorb compute heterogeneity (the paper's future-work motivation for
dynamic approaches).
"""

import pytest

from repro.kernels.lk23_orwl import Lk23Config, build_program
from repro.orwl.runtime import Runtime
from repro.placement.binder import bind_program
from repro.simulate.machine import Machine
from repro.topology import presets

SOCKETS = 8
CORES = 8


def _run(slow_factor: float) -> float:
    topo = presets.paper_smp(SOCKETS, CORES)
    rates = {}
    if slow_factor != 1.0:
        # Socket 0's PUs (os 0..7) run slower.
        for os_idx in range(CORES):
            rates[os_idx] = 2e9 * slow_factor
    cfg = Lk23Config(n=16384, grid_rows=8, grid_cols=8, iterations=3)
    prog = build_program(cfg)
    plan = bind_program(prog, topo, policy="treematch")
    machine = Machine(topo, seed=0, core_rate_of=rates or None)
    rt = Runtime(prog, machine, mapping=plan.mapping,
                 control_mapping=plan.control_mapping)
    return rt.run().time


@pytest.mark.parametrize("slow_factor", [1.0, 0.5])
def test_heterogeneous_point(benchmark, slow_factor):
    t = benchmark.pedantic(_run, args=(slow_factor,), rounds=1, iterations=1)
    benchmark.extra_info["slow_factor"] = slow_factor
    benchmark.extra_info["sim_time_s"] = t
    assert t > 0


def test_slow_socket_gates_the_run(benchmark):
    def both():
        return _run(1.0), _run(0.5)

    t_homo, t_het = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["homogeneous_s"] = t_homo
    benchmark.extra_info["half_speed_socket_s"] = t_het
    slowdown = t_het / t_homo
    benchmark.extra_info["slowdown"] = slowdown
    # One of eight sockets at half speed drags the synchronized stencil
    # far more than its 1/8 share of the compute (toward 2x, bounded by it).
    assert 1.3 < slowdown <= 2.1, f"unexpected heterogeneity slowdown {slowdown:.2f}"
