"""Synthetic topology construction.

Real deployments would load the topology from hwloc; here we build it
synthetically, the way ``hwloc --input "package:24 core:8 pu:1"`` does.
Two entry points:

* :class:`TopologyBuilder` — explicit, programmatic tree assembly.
* :func:`from_spec` — parse an hwloc-style synthetic description string
  such as ``"numa:4 package:2 l3:1 core:8 pu:2"``.

Default cache/memory attributes are attached so the simulator's memory
model always has sizes and latencies to work with; they can be overridden
per level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.topology.objects import (
    CacheAttributes,
    MemoryAttributes,
    ObjType,
    TopologyObject,
)
from repro.topology.tree import Topology, TopologyError

#: Default cache attributes per cache level (sizes typical of the 2016 era
#: Xeon machines the paper used: 32 KiB L1d, 256 KiB L2, 20 MiB shared L3).
DEFAULT_CACHE_ATTRS: dict[ObjType, CacheAttributes] = {
    ObjType.L3: CacheAttributes(size=20 * 1024 * 1024, line_size=64, latency=12e-9),
    ObjType.L2: CacheAttributes(size=256 * 1024, line_size=64, latency=4e-9),
    ObjType.L1: CacheAttributes(size=32 * 1024, line_size=64, latency=1.2e-9),
}

#: Default per-NUMA-node memory: 32 GiB at ~90 ns / ~40 GB/s.
DEFAULT_MEMORY_ATTRS = MemoryAttributes(
    local_bytes=32 * 1024 * 1024 * 1024, latency=90e-9, bandwidth=40e9
)

_SPEC_TYPE_NAMES: dict[str, ObjType] = {
    "machine": ObjType.MACHINE,
    "group": ObjType.GROUP,
    "numa": ObjType.NUMANODE,
    "numanode": ObjType.NUMANODE,
    "node": ObjType.NUMANODE,
    "package": ObjType.PACKAGE,
    "socket": ObjType.PACKAGE,
    "l3": ObjType.L3,
    "l2": ObjType.L2,
    "l1": ObjType.L1,
    "core": ObjType.CORE,
    "pu": ObjType.PU,
}


@dataclass
class LevelSpec:
    """One level of a synthetic topology: *count* children of *type_* per parent."""

    type_: ObjType
    count: int
    cache: Optional[CacheAttributes] = None
    memory: Optional[MemoryAttributes] = None

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"level count must be > 0, got {self.count}")


class TopologyBuilder:
    """Assemble a balanced topology level by level.

    Example
    -------
    The paper's 24-socket, 8-core, 192-PU SMP::

        topo = (TopologyBuilder("paper-smp")
                .add_level(ObjType.NUMANODE, 24)
                .add_level(ObjType.PACKAGE, 1)
                .add_level(ObjType.L3, 1)
                .add_level(ObjType.CORE, 8)
                .add_level(ObjType.PU, 1)
                .build())
    """

    def __init__(self, name: str = "synthetic") -> None:
        self.name = name
        self._levels: list[LevelSpec] = []

    def add_level(
        self,
        type_: ObjType,
        count: int,
        cache: Optional[CacheAttributes] = None,
        memory: Optional[MemoryAttributes] = None,
    ) -> "TopologyBuilder":
        """Append a level: every object of the previous level gets *count*
        children of *type_*.  Returns ``self`` for chaining."""
        if type_ is ObjType.MACHINE:
            raise ValueError("MACHINE is implicit; do not add it as a level")
        if self._levels:
            prev = self._levels[-1].type_
            if type_ <= prev and type_ is not ObjType.GROUP:
                raise ValueError(
                    f"level {type_.name} cannot nest inside {prev.name}"
                )
            if prev is ObjType.PU:
                raise ValueError("PU must be the innermost level")
        self._levels.append(LevelSpec(type_, count, cache=cache, memory=memory))
        return self

    def build(self) -> Topology:
        """Materialize the tree and return the finalized :class:`Topology`."""
        if not self._levels:
            raise TopologyError("no levels specified")
        if self._levels[-1].type_ is not ObjType.PU:
            raise TopologyError(
                f"innermost level must be PU, got {self._levels[-1].type_.name}"
            )
        root = TopologyObject(ObjType.MACHINE, name=self.name)
        frontier = [root]
        for spec in self._levels:
            next_frontier: list[TopologyObject] = []
            for parent in frontier:
                for _ in range(spec.count):
                    obj = TopologyObject(spec.type_)
                    if spec.type_.is_cache:
                        obj.cache = spec.cache or DEFAULT_CACHE_ATTRS[spec.type_]
                    if spec.type_ is ObjType.NUMANODE:
                        obj.memory = spec.memory or DEFAULT_MEMORY_ATTRS
                    parent.add_child(obj)
                    next_frontier.append(obj)
            frontier = next_frontier
        return Topology(root, name=self.name)


def from_spec(spec: str, name: str = "") -> Topology:
    """Parse an hwloc-style synthetic description.

    *spec* is a whitespace-separated list of ``type:count`` terms, outermost
    first, e.g. ``"numa:24 package:1 l3:1 core:8 pu:1"``.  A bare integer
    term is shorthand for an anonymous GROUP level, as in hwloc.  The
    innermost term must be a ``pu`` level.
    """
    levels: list[tuple[ObjType, int]] = []
    for term in spec.split():
        if ":" in term:
            tname, _, cnt_s = term.partition(":")
            tname = tname.strip().lower()
            if tname not in _SPEC_TYPE_NAMES:
                raise TopologyError(f"unknown object type {tname!r} in spec {spec!r}")
            type_ = _SPEC_TYPE_NAMES[tname]
        else:
            cnt_s = term
            type_ = ObjType.GROUP
        try:
            count = int(cnt_s)
        except ValueError:
            raise TopologyError(f"bad count in term {term!r}") from None
        levels.append((type_, count))
    if not levels:
        raise TopologyError("empty synthetic spec")
    builder = TopologyBuilder(name or spec)
    for type_, count in levels:
        builder.add_level(type_, count)
    return builder.build()


def flat_topology(n_pus: int, name: str = "flat") -> Topology:
    """A machine with *n_pus* PUs directly under one core level.

    Useful in unit tests where hierarchy is irrelevant.
    """
    if n_pus <= 0:
        raise TopologyError(f"n_pus must be > 0, got {n_pus}")
    return (
        TopologyBuilder(name)
        .add_level(ObjType.CORE, n_pus)
        .add_level(ObjType.PU, 1)
        .build()
    )
