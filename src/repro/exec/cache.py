"""Construction, placement, and sweep-point caches.

Three tiers, all bit-identical to the uncached paths (a cached object
or result is byte-for-byte what the cold computation would produce;
``tests/test_exec.py`` pins this with determinism fingerprints):

* **Construction caches** — :func:`cached_topology` /
  :func:`cached_distance_model` memoize per-process topology and
  :class:`~repro.topology.distance.DistanceModel` construction, keyed
  by preset.  Building the model runs an O(P²) LCA sweep, so a sweep
  touching the same machine shape many times pays it once per process.
  Both caches are LRU-bounded so a long mega-topology sweep cannot grow
  worker memory without limit.
* **Placement memo** — :func:`cached_tree_match` memoizes TreeMatch
  results keyed by ``(topology fingerprint, sha-256 comm-matrix digest,
  algorithm params)``.  Placement is seed-independent, so an N-seed
  replicated sweep derives each mapping once instead of N times; an
  optional on-disk store (under :func:`cache_dir`) shares mappings
  across worker processes and across runs.
* **Point cache** — :class:`PointCache` is a content-addressed on-disk
  store of whole sweep-point results, keyed by
  ``sha256(schema version ⊕ function ⊕ kwargs)`` (the seed travels in
  the kwargs).  Re-running a sweep after adding seeds or points only
  simulates the delta; :class:`~repro.exec.runner.SweepRunner` consults
  it before dispatching.

Configuration travels through environment variables so pool workers
(fork *and* spawn) inherit it: ``REPRO_CACHE=off`` disables every tier
(the ``--no-cache`` escape hatch), ``REPRO_CACHE_DIR`` roots the
on-disk tiers.  :func:`configure_cache` sets both.  Without a cache
dir, the in-process tiers still run (they are pure memoization); no
disk is ever touched.

Every on-disk payload embeds the :data:`CACHE_SCHEMA_VERSION`, its own
key, and a sha-256 of the pickled value; any mismatch — truncation,
bit flips, stale schema, renamed files — reads as a transparent miss
and the value is recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence, Union

import numpy as np

from repro.topology import presets
from repro.topology.distance import (
    CLUSTER_LEVEL_COSTS,
    DEFAULT_LEVEL_COSTS,
    DistanceModel,
)
from repro.topology.serialize import to_dict as _topology_to_dict
from repro.topology.tree import Topology
from repro.util.validate import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.comm.matrix import CommMatrix
    from repro.topology.cpuset import CpuSet
    from repro.treematch.algorithm import TreeMatchResult

#: Version tag baked into every cache key and on-disk payload.  Bump it
#: whenever simulation semantics or pickled layouts change; old entries
#: then read as misses instead of stale hits.
CACHE_SCHEMA_VERSION = "repro-cache-v1"

#: Environment switches (env vars so pool workers inherit them).
ENV_CACHE = "REPRO_CACHE"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: The conventional on-disk root the CLIs default to.
DEFAULT_CACHE_DIR = ".repro-cache"

#: LRU capacity of the per-process topology / distance-model caches.
TOPOLOGY_CACHE_CAP = 32

#: LRU capacity of the in-process placement memo.
PLACEMENT_CACHE_CAP = 256

#: Named cost tables selectable by :func:`cached_distance_model`.
COST_TABLES = {
    "default": DEFAULT_LEVEL_COSTS,
    "cluster": CLUSTER_LEVEL_COSTS,
}


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


def configure_cache(
    enabled: bool = True, directory: Optional[Union[str, Path]] = None
) -> None:
    """Set the process-wide (and child-inherited) cache configuration.

    ``enabled=False`` switches every tier off — the ``--no-cache`` cold
    path.  *directory* roots the on-disk tiers (placement memo spillover
    and :func:`default_point_cache`); ``None`` keeps caching purely
    in-process.
    """
    if enabled:
        os.environ.pop(ENV_CACHE, None)
    else:
        os.environ[ENV_CACHE] = "off"
    if directory is None:
        os.environ.pop(ENV_CACHE_DIR, None)
    else:
        os.environ[ENV_CACHE_DIR] = str(directory)


def cache_enabled() -> bool:
    """Whether any caching tier may serve hits (default: yes)."""
    return os.environ.get(ENV_CACHE, "").strip().lower() not in (
        "off", "0", "false", "no",
    )


def cache_dir() -> Optional[Path]:
    """The on-disk cache root, or ``None`` when disk tiers are off."""
    if not cache_enabled():
        return None
    value = os.environ.get(ENV_CACHE_DIR, "").strip()
    return Path(value) if value else None


# ---------------------------------------------------------------------------
# Hit/miss counters
# ---------------------------------------------------------------------------

_STATS: dict[str, int] = {}


def _bump(key: str, n: int = 1) -> None:
    _STATS[key] = _STATS.get(key, 0) + n


def cache_stats() -> dict[str, int]:
    """Snapshot of this process's cumulative cache counters."""
    return dict(_STATS)


def bump_stat(key: str, n: int = 1) -> None:
    """Increment a named counter in this process's cache statistics.

    Public so that layers built on the cache (the placement service's
    single-flight and phase-detection counters) report through the same
    :func:`cache_stats` snapshot the tests and sweep runner already
    consume.
    """
    _bump(key, n)


def stats_delta(
    before: dict[str, int], after: Optional[dict[str, int]] = None
) -> dict[str, int]:
    """Counter increments between two snapshots (zero entries dropped).

    Pool workers fork with the parent's counters already non-zero; the
    runner snapshots around each chunk and ships only the delta home.
    """
    if after is None:
        after = cache_stats()
    out = {}
    for key, value in after.items():
        d = value - before.get(key, 0)
        if d:
            out[key] = d
    return out


def merge_stats(into: dict[str, int], delta: dict[str, int]) -> dict[str, int]:
    """Accumulate *delta* into *into* (in place; returned for chaining)."""
    for key, value in delta.items():
        into[key] = into.get(key, 0) + value
    return into


def reset_cache_stats() -> None:
    """Zero the counters (tests and benchmarks)."""
    _STATS.clear()


# ---------------------------------------------------------------------------
# Bounded in-process caches
# ---------------------------------------------------------------------------


class _LRUDict(OrderedDict):
    """A dict evicting its least-recently-used entry past *cap* items."""

    def __init__(self, cap: int) -> None:
        super().__init__()
        if cap <= 0:
            raise ValidationError(f"LRU cap must be > 0, got {cap}")
        self.cap = int(cap)

    def get(self, key: Any, default: Any = None) -> Any:
        try:
            value = super().__getitem__(key)
        except KeyError:
            return default
        self.move_to_end(key)
        return value

    def put(self, key: Any, value: Any) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        while len(self) > self.cap:
            self.popitem(last=False)


_TOPOLOGIES: _LRUDict = _LRUDict(TOPOLOGY_CACHE_CAP)
_MODELS: _LRUDict = _LRUDict(TOPOLOGY_CACHE_CAP)
_PLACEMENTS: _LRUDict = _LRUDict(PLACEMENT_CACHE_CAP)


def cached_topology(preset: str, *args: int) -> Topology:
    """Build (or fetch) the preset topology ``presets.PRESETS[preset](*args)``.

    The cache key is ``(preset, args)``; the returned object is shared,
    so treat it as read-only (everything in the repo already does).
    """
    try:
        factory = presets.PRESETS[preset]
    except KeyError:
        raise ValidationError(
            f"unknown preset {preset!r}; available: {', '.join(sorted(presets.PRESETS))}"
        ) from None
    key = (preset, args)
    topo = _TOPOLOGIES.get(key)
    if topo is None:
        topo = factory(*args)
        _TOPOLOGIES.put(key, topo)
        _bump("topology_build")
    return topo


def cached_distance_model(
    preset: str, *args: int, costs: str = "default"
) -> DistanceModel:
    """A shared :class:`DistanceModel` over :func:`cached_topology`.

    *costs* selects a table from :data:`COST_TABLES` (``"default"`` or
    ``"cluster"``).  When the parent process published the model's
    tables into shared memory (see :mod:`repro.exec.shm`), the model is
    assembled zero-copy from read-only views instead of re-running the
    O(P²) LCA sweep.
    """
    try:
        table = COST_TABLES[costs]
    except KeyError:
        raise ValidationError(
            f"unknown cost table {costs!r}; one of {tuple(COST_TABLES)}"
        ) from None
    key = (preset, args, costs)
    model = _MODELS.get(key)
    if model is not None:
        return model
    topo = cached_topology(preset, *args)
    tables = None
    if cache_enabled():
        from repro.exec import shm

        tables = shm.attach_tables(shm.shm_key(preset, args, costs))
    if tables is not None:
        model = DistanceModel.from_tables(
            topo,
            tables["lca_depth"],
            tables["lca_type"],
            level_costs=dict(table),
            lat_table=tables["lat_table"],
            bw_table=tables["bw_table"],
        )
        _bump("model_shm_attach")
    else:
        model = DistanceModel(topo, level_costs=dict(table))
        _bump("model_build")
    _MODELS.put(key, model)
    return model


def machine_inputs(
    preset: str, *args: int, costs: str = "default"
) -> tuple[Topology, DistanceModel]:
    """The ``(topology, distance_model)`` pair a :class:`Machine` needs.

    The single call sites use: ``Machine(topo, distance_model=model, ...)``.
    """
    model = cached_distance_model(preset, *args, costs=costs)
    return model.topo, model


def normalize_machine_spec(spec: Any) -> tuple[str, tuple, str]:
    """Normalize a machine spec to ``(preset, args, costs)``.

    Accepted shapes: ``"paper"``, ``("paper",)``,
    ``("paper-smp", (24, 8))``, ``("paper-smp", (24, 8), "default")``.
    This is the key format of :attr:`SweepRunner.shared_topologies`.
    """
    if isinstance(spec, str):
        return spec, (), "default"
    spec = tuple(spec)
    if not spec or not isinstance(spec[0], str) or len(spec) > 3:
        raise ValidationError(f"bad machine spec {spec!r}")
    preset = spec[0]
    args = tuple(spec[1]) if len(spec) > 1 else ()
    costs = spec[2] if len(spec) > 2 else "default"
    return preset, args, costs


def clear_cache() -> Optional[int]:
    """Drop all in-process cached objects; returns how many were dropped."""
    n = len(_TOPOLOGIES) + len(_MODELS) + len(_PLACEMENTS)
    _TOPOLOGIES.clear()
    _MODELS.clear()
    _PLACEMENTS.clear()
    return n


# ---------------------------------------------------------------------------
# Fingerprints and digests
# ---------------------------------------------------------------------------


def topology_fingerprint(topo: Topology) -> str:
    """Content sha-256 of a topology (via its canonical serialized form).

    Cached on the instance: computing it walks the whole tree once, and
    the placement memo consults it per ``tree_match`` call.
    """
    cached = getattr(topo, "_cache_fingerprint", None)
    if cached is not None:
        return cached
    payload = json.dumps(
        _topology_to_dict(topo), sort_keys=True, separators=(",", ":")
    )
    fp = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    topo._cache_fingerprint = fp
    return fp


def matrix_digest(matrix: Union["CommMatrix", np.ndarray]) -> str:
    """Content sha-256 of a communication matrix (values, shape, labels).

    Flipping any single cell flips the digest, so a memoized placement
    can never be served for a different communication pattern.
    """
    values = np.ascontiguousarray(
        np.asarray(getattr(matrix, "values", matrix), dtype=np.float64)
    )
    h = hashlib.sha256()
    h.update(repr(values.shape).encode("utf-8"))
    h.update(values.tobytes())
    for label in getattr(matrix, "labels", ()):
        h.update(b"\x1f")
        h.update(str(label).encode("utf-8"))
    return h.hexdigest()


def placement_key(topo: Topology, matrix: "CommMatrix", **params: Any) -> str:
    """The placement memo key: topology ⊕ matrix ⊕ algorithm params."""
    h = hashlib.sha256()
    h.update(CACHE_SCHEMA_VERSION.encode("utf-8"))
    h.update(b"|placement|")
    h.update(topology_fingerprint(topo).encode("utf-8"))
    h.update(matrix_digest(matrix).encode("utf-8"))
    h.update(repr(sorted(params.items())).encode("utf-8"))
    return h.hexdigest()


# ---------------------------------------------------------------------------
# On-disk payloads (shared by the placement memo and the point cache)
# ---------------------------------------------------------------------------


def _disk_load(path: Path, key: str) -> Optional[tuple[Any]]:
    """Load one payload; returns ``(value,)`` or ``None`` on any defect.

    Wrong schema, wrong key, sha mismatch, truncation, unpicklable
    garbage, missing file — all read as a miss; the caller recomputes.
    A file that *exists* but fails validation additionally bumps the
    ``disk_corrupt_miss`` counter, separating "never stored" from
    "stored and rotted" in sweep stats and metrics.
    """
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA_VERSION
            or payload.get("key") != key
        ):
            _bump("disk_corrupt_miss")
            return None
        blob = payload["blob"]
        if hashlib.sha256(blob).hexdigest() != payload["sha256"]:
            _bump("disk_corrupt_miss")
            return None
        return (pickle.loads(blob),)
    except FileNotFoundError:
        return None
    except Exception:
        _bump("disk_corrupt_miss")
        return None


def _disk_store(path: Path, key: str, value: Any) -> bool:
    """Write one payload atomically; best-effort (failure = no cache)."""
    try:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "sha256": hashlib.sha256(blob).hexdigest(),
            "blob": blob,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return True
    except Exception:
        return False


# ---------------------------------------------------------------------------
# Tier 1: the placement memo
# ---------------------------------------------------------------------------


def cached_tree_match(
    topo: Topology,
    matrix: "CommMatrix",
    n_control: int = 0,
    control_pairing: Optional[Sequence[int]] = None,
    control_volume: Optional[float] = None,
    strategy: str = "auto",
    refine: bool = True,
    allowed: Optional["CpuSet"] = None,
    failed: Optional[Sequence[int]] = None,
) -> "TreeMatchResult":
    """Memoized :func:`repro.treematch.tree_match`.

    Placement depends only on the topology, the communication matrix,
    and the algorithm parameters — never on the simulation seed — so a
    replicated sweep asks for the same mapping once per seed.  Hits are
    served from an in-process LRU, then from the on-disk store under
    :func:`cache_dir` (when configured); misses run the algorithm and
    populate both.  Disabled (a pure pass-through) under
    ``REPRO_CACHE=off``.

    *failed* marks dead PU os indices: the mapping is computed by
    :func:`repro.treematch.remap.remap_full` on the surviving PUs, and
    — critically — the failed set is part of the memo key, so a
    post-failure query can never be answered with a pre-failure cached
    mapping (and vice versa).  Control-thread extension and ``allowed``
    are not composable with ``failed``.
    """
    from repro.treematch.algorithm import TreeMatchResult, tree_match

    failed_t = tuple(sorted({int(p) for p in failed})) if failed else ()
    if failed_t and (n_control or allowed is not None):
        raise ValidationError(
            "cached_tree_match: failed= cannot be combined with "
            "control threads or an allowed cpuset"
        )

    def compute() -> "TreeMatchResult":
        if failed_t:
            from repro.treematch.remap import remap_full

            remapped = remap_full(
                topo, matrix, failed=failed_t, strategy=strategy, refine=refine
            )
            return TreeMatchResult(mapping=remapped.mapping)
        return tree_match(
            topo,
            matrix,
            n_control=n_control,
            control_pairing=control_pairing,
            control_volume=control_volume,
            strategy=strategy,
            refine=refine,
            allowed=allowed,
        )

    if not cache_enabled():
        return compute()
    key = placement_key(
        topo,
        matrix,
        n_control=int(n_control),
        control_pairing=(
            None if control_pairing is None else tuple(control_pairing)
        ),
        control_volume=control_volume,
        strategy=str(strategy),
        refine=bool(refine),
        allowed=None if allowed is None else repr(allowed),
        failed=failed_t,
    )
    result = _PLACEMENTS.get(key)
    if result is not None:
        _bump("placement_hit")
        return result
    root = cache_dir()
    path = None
    if root is not None:
        path = Path(root) / "placements" / key[:2] / f"{key}.pkl"
        loaded = _disk_load(path, key)
        if loaded is not None:
            _bump("placement_disk_hit")
            _PLACEMENTS.put(key, loaded[0])
            return loaded[0]
    _bump("placement_miss")
    result = compute()
    _PLACEMENTS.put(key, result)
    if path is not None:
        _disk_store(path, key, result)
    return result


# ---------------------------------------------------------------------------
# Tier 3: the content-addressed point cache
# ---------------------------------------------------------------------------


def point_key(fn: Callable[..., Any], kwargs: dict[str, Any]) -> str:
    """Content address of one sweep point: function ⊕ kwargs ⊕ schema.

    The seed is part of *kwargs*, so every replicate has its own key;
    so do flags like ``fingerprint`` or ``engine_mode`` that change
    what the point computes.
    """
    h = hashlib.sha256()
    h.update(CACHE_SCHEMA_VERSION.encode("utf-8"))
    h.update(b"|point|")
    h.update(f"{fn.__module__}.{fn.__qualname__}".encode("utf-8"))
    for name in sorted(kwargs):
        h.update(b"\x1f")
        h.update(name.encode("utf-8"))
        h.update(b"=")
        h.update(repr(kwargs[name]).encode("utf-8"))
    return h.hexdigest()


class PointCache:
    """Content-addressed on-disk store of whole sweep-point results.

    Layout: ``root/<key[:2]>/<key>.pkl``, one verified pickle payload
    per point (see the module docstring for the corruption contract).
    ``hits`` / ``misses`` / ``stores`` count this instance's traffic;
    the process-wide counters get ``point_hit`` / ``point_miss`` too.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_of(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        loaded = _disk_load(self.path_of(key), key)
        if loaded is None:
            self.misses += 1
            _bump("point_miss")
            return None
        self.hits += 1
        _bump("point_hit")
        return loaded[0]

    def put(self, key: str, value: Any) -> bool:
        ok = _disk_store(self.path_of(key), key, value)
        if ok:
            self.stores += 1
        return ok

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def __repr__(self) -> str:
        return f"<PointCache {self.root} hits={self.hits} misses={self.misses}>"


def default_point_cache() -> Optional[PointCache]:
    """The env-configured point cache (``None`` when disk tiers are off)."""
    root = cache_dir()
    if root is None:
        return None
    return PointCache(Path(root) / "points")


def resolve_point_cache(arg: Any) -> Optional[PointCache]:
    """Resolve an experiment's ``point_cache`` argument.

    ``None`` (and ``True``) mean "the environment default" —
    :func:`default_point_cache`; ``False`` forces the cache off
    regardless of environment (benchmarks measuring cold walls use
    this); a :class:`PointCache` instance passes through as-is.
    """
    if arg is False:
        return None
    if arg is None or arg is True:
        return default_point_cache()
    return arg
