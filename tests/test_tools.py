"""Tests for the CLI tools and host-topology discovery."""

import pytest

from repro.comm import patterns
from repro.tools import fig1 as fig1_cli
from repro.tools import lstopo as lstopo_cli
from repro.tools import treematch as tm_cli
from repro.tools._common import resolve_topology
from repro.topology import serialize
from repro.topology.discover import discover, discover_linux
from repro.topology import presets


class TestResolveTopology:
    def test_preset_name(self):
        assert resolve_topology("small-numa").nb_pus == 8

    def test_spec_string(self):
        assert resolve_topology("numa:2 core:2 pu:1").nb_pus == 4

    def test_json_file(self, tmp_path):
        p = tmp_path / "t.json"
        serialize.save(presets.small_numa(), p)
        assert resolve_topology(str(p)).nb_pus == 8

    def test_garbage_exits(self):
        with pytest.raises(SystemExit):
            resolve_topology("certainly not a topology ###")


class TestLstopo:
    def test_render_default(self, capsys):
        assert lstopo_cli.main(["small-numa"]) == 0
        out = capsys.readouterr().out
        assert "Machine#0" in out
        assert "PU: 8" in out

    def test_summary_flag(self, capsys):
        lstopo_cli.main(["small-numa", "--summary"])
        out = capsys.readouterr().out
        assert "Machine#0" not in out
        assert "NUMANODE: 2" in out

    def test_export(self, tmp_path, capsys):
        dest = tmp_path / "out.json"
        lstopo_cli.main(["small-numa", "--export", str(dest)])
        assert serialize.load(dest).nb_pus == 8


class TestTreematchCli:
    def test_demo_mode(self, capsys):
        assert tm_cli.main(["--demo", "small-numa"]) == 0
        out = capsys.readouterr().out
        assert "treematch on" in out
        assert "numa-cut" in out

    def test_matrix_file(self, tmp_path, capsys):
        mat = patterns.stencil_2d(2, 4)
        path = tmp_path / "m.txt"
        mat.save(path)
        assert tm_cli.main([str(path), "small-numa"]) == 0
        out = capsys.readouterr().out
        assert "b0.0" in out  # stencil labels listed

    def test_policy_choice(self, capsys):
        assert tm_cli.main(["--demo", "small-numa", "--policy", "compact"]) == 0
        assert "compact on" in capsys.readouterr().out

    def test_missing_matrix_errors(self):
        with pytest.raises(SystemExit):
            tm_cli.main([])


class TestFig1Cli:
    def test_small_sweep(self, capsys):
        assert fig1_cli.main(["--cores", "8", "--iterations", "2", "--n", "1024"]) == 0
        out = capsys.readouterr().out
        assert "orwl-bind" in out

    def test_csv_export(self, tmp_path, capsys):
        dest = tmp_path / "fig1.csv"
        fig1_cli.main(
            ["--cores", "8", "--iterations", "2", "--n", "1024", "--csv", str(dest)]
        )
        lines = dest.read_text().splitlines()
        assert lines[0].startswith("implementation,")
        assert len(lines) == 4  # header + 3 implementations


class TestSimulateCli:
    def test_runs_small(self, capsys):
        from repro.tools import simulate as sim_cli

        rc = sim_cli.main(
            ["--topology", "small-numa", "--iterations", "2", "--n", "1024"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "processing" in out
        assert "NUMA-local" in out

    def test_report_flag(self, capsys):
        from repro.tools import simulate as sim_cli

        sim_cli.main(
            ["--topology", "small-numa", "--iterations", "2", "--n", "1024",
             "--report"]
        )
        out = capsys.readouterr().out
        assert "Placement report" in out

    def test_nobind_policy(self, capsys):
        from repro.tools import simulate as sim_cli

        rc = sim_cli.main(
            ["--topology", "small-numa", "--policy", "nobind",
             "--iterations", "2", "--n", "1024"]
        )
        assert rc == 0


class TestValidateCli:
    def test_default_model_passes(self, capsys):
        from repro.tools import validate as val_cli

        assert val_cli.main(["small-numa"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_cluster_costs_flag(self, capsys):
        from repro.tools import validate as val_cli

        assert val_cli.main(["cluster", "--cluster-costs"]) == 0


class TestReproduceCli:
    @pytest.mark.slow
    def test_full_reproduction_passes(self, capsys):
        from repro.tools import reproduce as rep_cli

        rc = rep_cli.main(["--cores", "8", "96", "192", "--iterations", "3"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "[PASS] C2" in out
        assert "All claims reproduced." in out


class TestDiscover:
    def test_discover_best_effort(self):
        topo = discover()
        # On Linux CI this succeeds; elsewhere None is acceptable.
        if topo is not None:
            assert topo.nb_pus >= 1
            assert topo.arities()  # balanced envelope

    def test_discover_linux_on_this_host(self):
        import pathlib

        if not pathlib.Path("/sys/devices/system/cpu").is_dir():
            pytest.skip("no sysfs")
        topo = discover_linux()
        assert topo is not None
        import os

        assert topo.nb_pus >= 1
