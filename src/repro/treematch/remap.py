"""Fault-aware re-mapping: keep a placement alive when PUs fail or drain.

The paper runs Algorithm 1 once at launch.  A long-lived placement
service (:mod:`repro.placement.service`) instead has to *repair* a
mapping online when processing units disappear — hardware faults,
administrative drains, cgroup shrinkage.  Two entry points:

* :func:`remap_full` — the reference: restrict the topology to the
  surviving PUs and re-run TreeMatch from scratch.  When the restricted
  tree stays balanced (whole cores/sockets removed) this is literally
  ``tree_match(restrict(topo, survivors), matrix)``; when single PUs
  die and the tree goes ragged, a deterministic capacity-apportioned
  recursive partitioner (:func:`place_restricted`) takes over, since
  Algorithm 1 requires balanced arities.
* :func:`remap_incremental` — the online repair: starting from a *base*
  placement computed on the healthy machine, only the repair domains
  (NUMA nodes by default) that actually lost PUs are re-placed;
  threads in untouched domains keep their bindings bit-for-bit.
  Displaced threads are re-placed by a deterministic cost-greedy rule
  (volume-weighted hop distance to the already-fixed threads),
  preferring slots inside their home domain and spilling to the
  nearest free survivor otherwise.

Both produce a :class:`RemapResult` whose mapping provably never uses a
dead PU and never exceeds the minimal uniform capacity
``ceil(bound_threads / surviving_PUs)`` per PU
(``tests/test_placement_service.py`` pins both properties plus the
incremental-vs-full quality bound).

Determinism contract: results depend only on ``(topology, matrix,
cumulative failed/drained sets, parameters)`` — never on the order in
which failures were observed.  A service that accumulates failures and
always repairs from the pristine base therefore returns byte-identical
mappings for any interleaving of the same fault events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Union

import numpy as np

from repro.comm.matrix import CommMatrix
from repro.topology.cpuset import CpuSet
from repro.topology.distance import DistanceModel
from repro.topology.objects import ObjType, TopologyObject
from repro.topology.restrict import restrict
from repro.topology.tree import Topology, TopologyError
from repro.treematch.algorithm import TreeMatchResult, tree_match
from repro.treematch.mapping import Mapping
from repro.util.validate import ValidationError


@dataclass(frozen=True)
class RemapResult:
    """A repaired placement plus the audit trail of the repair.

    Attributes
    ----------
    mapping:
        The new thread → PU assignment (full-machine os indices; no
        entry is a failed or drained PU).
    moved:
        Thread ids whose PU changed relative to the base mapping
        (:func:`remap_full` reports moves against the matrix-order
        prefix of the base it was given, or ``()`` with no base).
    affected_domains:
        Logical indices of the repair domains that lost at least one PU
        (empty for :func:`remap_full`'s from-scratch paths).
    failed, drained:
        The cumulative dead-PU sets the repair honored (sorted).
    capacity:
        Max threads any single PU may carry after the repair —
        ``ceil(bound_threads / surviving_PUs)``.
    method:
        Which path produced the mapping: ``"unchanged"``,
        ``"incremental"``, ``"treematch"`` (no failures),
        ``"treematch-restricted"`` (balanced survivors), or
        ``"capacity-greedy"`` (ragged survivors).
    """

    mapping: Mapping
    moved: tuple[int, ...]
    affected_domains: tuple[int, ...]
    failed: tuple[int, ...]
    drained: tuple[int, ...]
    capacity: int
    method: str


# ---------------------------------------------------------------------------
# Shared validation
# ---------------------------------------------------------------------------


def _dead_and_survivors(
    topo: Topology,
    failed: Iterable[int],
    drained: Iterable[int],
) -> tuple[tuple[int, ...], tuple[int, ...], CpuSet]:
    """Validate the dead sets; return (failed, drained, survivor cpuset)."""
    valid = {pu.os_index for pu in topo.pus()}
    failed_t = tuple(sorted({int(p) for p in failed}))
    drained_t = tuple(sorted({int(p) for p in drained}))
    for p in failed_t + drained_t:
        if p not in valid:
            raise ValidationError(f"unknown PU os_index {p} in failed/drained set")
    dead = set(failed_t) | set(drained_t)
    survivors = topo.cpuset - CpuSet(dead)
    if survivors.is_empty():
        raise ValidationError("every PU is failed or drained; nothing to map onto")
    return failed_t, drained_t, survivors


def repair_domains(
    topo: Topology, domain: Optional[ObjType] = None
) -> list[TopologyObject]:
    """The repair-granularity objects of *topo*.

    ``None`` selects NUMA nodes when the tree has them (the paper's
    locality unit), else the children of the machine root.  A repair
    domain is the region whose threads are re-optimized together when
    any of its PUs die.
    """
    if domain is not None:
        objs = list(topo.objects_by_type(domain))
        if not objs:
            raise ValidationError(
                f"topology has no {domain.name} level to use as repair domains"
            )
        return objs
    objs = list(topo.objects_by_type(ObjType.NUMANODE))
    if objs:
        return objs
    return list(topo.objects_at_depth(1)) if topo.depth > 1 else [topo.root]


def _capacity(n_bound: int, n_survivors: int) -> int:
    """Minimal uniform per-PU capacity after a failure."""
    return max(1, math.ceil(n_bound / n_survivors)) if n_bound else 1


# ---------------------------------------------------------------------------
# Incremental repair
# ---------------------------------------------------------------------------


def remap_incremental(
    topo: Topology,
    matrix: CommMatrix,
    base: Union[TreeMatchResult, Mapping],
    failed: Iterable[int] = (),
    drained: Iterable[int] = (),
    *,
    domain: Optional[ObjType] = None,
    model: Optional[DistanceModel] = None,
) -> RemapResult:
    """Repair *base* after losing the given PUs, touching only hit domains.

    Parameters
    ----------
    topo:
        The *healthy* machine (the failed PUs are still in the tree;
        they are excluded by the repair, not by the caller).
    matrix:
        Communication matrix over the threads (order = thread count).
    base:
        The placement computed on the healthy machine — a
        :class:`~repro.treematch.algorithm.TreeMatchResult` or a bare
        :class:`~repro.treematch.mapping.Mapping` covering at least
        ``matrix.order`` threads.
    failed, drained:
        Cumulative dead-PU os indices (semantically identical for
        placement; tracked separately for reporting).
    domain:
        Repair granularity (default: NUMA nodes, see
        :func:`repair_domains`).
    model:
        Optional pre-built :class:`DistanceModel` (saves the O(P²)
        sweep when the caller already has one).

    Invariants (property-tested): no thread lands on a dead PU; no PU
    exceeds ``ceil(bound_threads / survivors)`` threads; a thread moves
    only if its repair domain lost a PU.
    """
    base_mapping = base.mapping if isinstance(base, TreeMatchResult) else base
    n = matrix.order
    if base_mapping.n_threads < n:
        raise ValidationError(
            f"base mapping covers {base_mapping.n_threads} threads "
            f"but matrix order is {n}"
        )
    failed_t, drained_t, survivors = _dead_and_survivors(topo, failed, drained)
    dead = set(failed_t) | set(drained_t)
    pu_of = [base_mapping.pu(t) for t in range(n)]

    if not dead:
        return RemapResult(
            mapping=Mapping(tuple(pu_of), matrix.labels[:n], policy="remap"),
            moved=(),
            affected_domains=(),
            failed=failed_t,
            drained=drained_t,
            capacity=_capacity(sum(1 for p in pu_of if p >= 0), topo.nb_pus),
            method="unchanged",
        )

    domains = repair_domains(topo, domain)
    domain_of_pu: dict[int, int] = {}
    for di, obj in enumerate(domains):
        for os_index in obj.cpuset:
            domain_of_pu[os_index] = di
    affected = tuple(
        sorted({domain_of_pu[p] for p in dead if p in domain_of_pu})
    )
    affected_set = set(affected)

    n_bound = sum(1 for p in pu_of if p >= 0)
    cap = _capacity(n_bound, survivors.weight())

    if model is None:
        model = DistanceModel(topo)
    hops = model.hop_matrix()
    logical_of = {pu.os_index: model.logical_of_os(pu.os_index) for pu in topo.pus()}

    # Threads that keep their binding: bound, on a survivor, in an
    # untouched domain.  Everything else bound re-places.
    keep: list[int] = []
    to_place_by_domain: dict[int, list[int]] = {}
    for t in range(n):
        p = pu_of[t]
        if p < 0:
            continue
        home = domain_of_pu.get(p, -1)
        if home in affected_set:
            to_place_by_domain.setdefault(home, []).append(t)
        else:
            keep.append(t)

    free: dict[int, int] = {p: cap for p in survivors}
    for t in keep:
        free[pu_of[t]] -= 1

    vals = np.asarray(matrix.values, dtype=np.float64)
    row_volume = vals.sum(axis=1)
    new_pu = list(pu_of)
    fixed_threads: list[int] = list(keep)
    fixed_logical: list[int] = [logical_of[pu_of[t]] for t in keep]
    moved: list[int] = []

    survivor_list = [pu.os_index for pu in topo.pus() if pu.os_index in survivors]

    for di in affected:
        local = [p for p in survivor_list if domain_of_pu.get(p, -1) == di]
        threads = sorted(
            to_place_by_domain.get(di, ()),
            key=lambda t: (-row_volume[t], t),
        )
        for t in threads:
            candidates = [p for p in local if free[p] > 0]
            if not candidates:
                candidates = [p for p in survivor_list if free[p] > 0]
            if not candidates:  # pragma: no cover - cap guarantees a slot
                raise ValidationError("no surviving PU has free capacity")
            if fixed_threads:
                cand_logical = np.array(
                    [logical_of[p] for p in candidates], dtype=np.intp
                )
                vols = vals[t, fixed_threads]
                costs = hops[np.ix_(cand_logical, fixed_logical)] @ vols
                best = candidates[int(np.argmin(costs))]
            else:
                best = candidates[0]
            free[best] -= 1
            if new_pu[t] != best:
                moved.append(t)
            new_pu[t] = best
            fixed_threads.append(t)
            fixed_logical.append(logical_of[best])

    mapping = Mapping(tuple(new_pu), matrix.labels[:n], policy="remap-incremental")
    return RemapResult(
        mapping=mapping,
        moved=tuple(sorted(moved)),
        affected_domains=affected,
        failed=failed_t,
        drained=drained_t,
        capacity=cap,
        method="incremental",
    )


# ---------------------------------------------------------------------------
# Full re-run reference
# ---------------------------------------------------------------------------


def _apportion(count: int, capacities: list[int]) -> list[int]:
    """Split *count* items across buckets bounded by *capacities*.

    Largest-remainder apportionment proportional to capacity, fully
    deterministic (remainder ties break on bucket index).  Requires
    ``count <= sum(capacities)``.
    """
    total = sum(capacities)
    if count > total:
        raise ValidationError(f"cannot apportion {count} items into {total} slots")
    ideal = [count * c / total if total else 0.0 for c in capacities]
    out = [min(c, math.floor(x)) for x, c in zip(ideal, capacities)]
    remainder = count - sum(out)
    order = sorted(
        range(len(capacities)),
        key=lambda i: (-(ideal[i] - out[i]), i),
    )
    k = 0
    while remainder > 0:
        i = order[k % len(order)]
        if out[i] < capacities[i]:
            out[i] += 1
            remainder -= 1
        k += 1
    return out


def _partition_sizes(
    m: np.ndarray, entities: list[int], sizes: list[int]
) -> list[list[int]]:
    """Greedy affinity partition of *entities* into groups of given sizes.

    The unequal-size sibling of
    :func:`repro.treematch.grouping.group_greedy`: groups are filled in
    order, each seeded with the heaviest-communicating unassigned
    entity and grown by maximum attachment volume.  Deterministic
    (ties break on entity id).
    """
    available = set(entities)
    row_volume = {e: float(m[e, list(entities)].sum()) for e in entities}
    groups: list[list[int]] = []
    for size in sizes:
        if size == 0 or not available:
            groups.append([])
            continue
        seed = min(available, key=lambda e: (-row_volume[e], e))
        group = [seed]
        available.discard(seed)
        while len(group) < size and available:
            scores = m[np.ix_(sorted(available), group)].sum(axis=1)
            ordered = sorted(available)
            best = ordered[int(np.argmax(scores))]
            group.append(best)
            available.discard(best)
        groups.append(sorted(group))
    if available:  # pragma: no cover - sizes always sum to len(entities)
        raise ValidationError("partition sizes did not cover every entity")
    return groups


def place_restricted(topo: Topology, matrix: CommMatrix) -> Mapping:
    """Deterministic capacity-aware placement on an arbitrary tree.

    The fallback reference for ragged survivor sets, where Algorithm 1
    cannot run (it requires uniform arities): recursively apportion the
    thread set across subtrees proportionally to their surviving leaf
    capacities, partitioning by the greedy affinity rule at every step.
    Oversubscription is uniform: each PU carries at most
    ``ceil(order / nb_pus)`` threads.
    """
    n = matrix.order
    if n == 0:
        raise ValidationError("cannot place an empty matrix")
    f = _capacity(n, topo.nb_pus)
    m = np.asarray(matrix.values, dtype=np.float64)
    pu_of = [0] * n

    def assign(node: TopologyObject, entities: list[int]) -> None:
        if not entities:
            return
        if node.type is ObjType.PU:
            assert node.os_index is not None
            for e in entities:
                pu_of[e] = node.os_index
            return
        kids = list(node.children)
        caps = [f * kid.cpuset.weight() for kid in kids]
        sizes = _apportion(len(entities), caps)
        for kid, group in zip(kids, _partition_sizes(m, entities, sizes)):
            assign(kid, group)

    assign(topo.root, list(range(n)))
    return Mapping(tuple(pu_of), matrix.labels, policy="capacity-greedy")


def remap_full(
    topo: Topology,
    matrix: CommMatrix,
    failed: Iterable[int] = (),
    drained: Iterable[int] = (),
    *,
    strategy: str = "auto",
    refine: bool = True,
    base: Optional[Union[TreeMatchResult, Mapping]] = None,
) -> RemapResult:
    """The from-scratch reference: TreeMatch on the restricted topology.

    With no dead PUs this is plain :func:`~repro.treematch.tree_match`.
    With dead PUs the topology is restricted to the survivors
    (os indices preserved, so the result is valid on the full machine);
    if the restriction is still balanced, Algorithm 1 runs on it,
    otherwise :func:`place_restricted` provides the deterministic
    capacity-aware fallback.

    *base* is only used to report which threads moved.
    """
    failed_t, drained_t, survivors = _dead_and_survivors(topo, failed, drained)
    n = matrix.order
    dead = set(failed_t) | set(drained_t)

    if not dead:
        result = tree_match(topo, matrix, strategy=strategy, refine=refine)
        mapping = result.mapping.restricted(n)
        method = "treematch"
        cap = _capacity(n, topo.nb_pus)
    else:
        restricted = restrict(topo, survivors)
        cap = _capacity(n, restricted.nb_pus)
        try:
            restricted.arities()
            balanced = True
        except TopologyError:
            balanced = False
        if balanced:
            result = tree_match(restricted, matrix, strategy=strategy, refine=refine)
            mapping = result.mapping.restricted(n)
            method = "treematch-restricted"
        else:
            mapping = place_restricted(restricted, matrix)
            method = "capacity-greedy"

    mapping = Mapping(mapping.pu_of, matrix.labels[:n], policy="remap-full")
    moved: tuple[int, ...] = ()
    if base is not None:
        base_mapping = base.mapping if isinstance(base, TreeMatchResult) else base
        moved = tuple(
            t for t in range(min(n, base_mapping.n_threads))
            if base_mapping.pu(t) != mapping.pu(t)
        )
    return RemapResult(
        mapping=mapping,
        moved=moved,
        affected_domains=(),
        failed=failed_t,
        drained=drained_t,
        capacity=cap,
        method=method,
    )
