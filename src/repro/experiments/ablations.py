"""Ablation studies for the design choices DESIGN.md calls out.

Each function is a self-contained experiment returning plain data
(dicts/lists) that the corresponding benchmark renders; they are also
imported by tests to assert the qualitative outcomes.

* :func:`mapping_quality` (A1) — TreeMatch vs the baselines on
  hop-bytes / NUMA-cut for synthetic affinity patterns.
* :func:`treematch_cost_curve` (A2) — Algorithm 1 wall time vs matrix
  order ("run at launch time" must stay cheap).
* :func:`control_strategy_comparison` (A3) — hyperthread reservation vs
  spare cores vs unmapped control threads on HT and non-HT machines.
* :func:`oversubscription_study` (A4) — tasks ≫ cores.
* :func:`affinity_extraction_fidelity` (A5) — static vs traced matrix.
"""

from __future__ import annotations

import time as _time
from typing import Sequence

from repro.comm import patterns
from repro.kernels.lk23_orwl import Lk23Config, build_program
from repro.orwl.runtime import Runtime
from repro.placement.affinity import matrix_correlation, static_matrix, traced_matrix
from repro.placement.binder import bind_program
from repro.placement.policies import make_policy
from repro.simulate.machine import Machine
from repro.stats.sweep import ReplicateSpec, run_replicated
from repro.topology import presets
from repro.topology.tree import Topology
from repro.treematch import cost as cost_mod
from repro.treematch.algorithm import tree_match


def _attach_time_stats(row: dict[str, float], stats) -> dict[str, float]:
    """Extend an ablation result row with its replicate aggregate.

    Rows stay plain dicts (the benchmarks render them as-is); the stats
    keys appear only for multi-seed runs, so single-seed output is
    unchanged down to the key set.
    """
    row = dict(row)
    row.update(
        time_mean=stats.mean,
        time_stddev=stats.stddev,
        time_ci_lo=stats.ci_lo,
        time_ci_hi=stats.ci_hi,
        n_seeds=float(stats.n),
    )
    return row

#: Policies compared by the mapping-quality ablation.
BASELINE_POLICIES = ("treematch", "compact", "scatter", "round-robin", "random")


def mapping_quality(
    topo: Topology | None = None,
    pattern: str = "stencil",
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """A1: locality scores of each policy on one affinity pattern.

    Returns ``{policy: score_report_dict}``.  Patterns: ``"stencil"``
    (8 × 8 grid with diagonal frontiers), ``"clustered"`` (8 clusters of
    8), ``"random"`` (sparse random).
    """
    topo = topo or presets.paper_smp(8, 8)
    n = topo.nb_pus
    if pattern == "stencil":
        rows, cols = patterns.square_grid_shape(n)
        matrix = patterns.stencil_2d(rows, cols, edge_volume=1000.0)
    elif pattern == "clustered":
        size = 8 if n % 8 == 0 else 4
        matrix = patterns.clustered(n // size, size, seed=seed)
    elif pattern == "random":
        matrix = patterns.random_sparse(n, density=0.15, seed=seed)
    else:
        raise ValueError(f"unknown pattern {pattern!r}")

    out: dict[str, dict[str, float]] = {}
    for name in BASELINE_POLICIES:
        kwargs = {"seed": seed} if name == "random" else {}
        policy = make_policy(name, **kwargs)
        mapping = policy.place(topo, matrix.order, matrix=matrix)
        out[name] = cost_mod.score_report(mapping, matrix, topo)
    return out


def treematch_cost_curve(
    orders: Sequence[int] = (16, 32, 64, 128, 256, 512),
    seed: int = 0,
) -> list[tuple[int, float]]:
    """A2: wall-clock seconds of Algorithm 1 per matrix order.

    The topology is scaled with the order (one PU per entity) so the
    measurement isolates algorithmic cost, not oversubscription.
    """
    out: list[tuple[int, float]] = []
    for order in orders:
        rows, cols = patterns.square_grid_shape(order)
        matrix = patterns.stencil_2d(rows, cols, edge_volume=100.0)
        sockets = max(order // 8, 1)
        topo = presets.paper_smp(sockets, min(order, 8))
        start = _time.perf_counter()
        tree_match(topo, matrix)
        out.append((order, _time.perf_counter() - start))
    return out


#: The A3 scenarios: preset factory args and LK23 grid shape per name.
_CONTROL_SCENARIOS = {
    "hyperthread": (("hyperthreaded_smp", 4, 8), (4, 8)),
    "spare-cores": (("paper_smp", 8, 8), (2, 2)),
    "unmapped": (("paper_smp", 4, 8), (4, 8)),
}


def _control_scenario(name: str, iterations: int, seed: int = 1) -> dict[str, float]:
    """One A3 scenario; module-level so the sweep runner can pickle it."""
    (factory, *args), (rows, cols) = _CONTROL_SCENARIOS[name]
    topo = getattr(presets, factory)(*args)
    cfg = Lk23Config(n=4096, grid_rows=rows, grid_cols=cols, iterations=iterations)
    prog = build_program(cfg)
    plan = bind_program(prog, topo, policy="treematch")
    machine = Machine(topo, seed=seed)
    runtime = Runtime(
        prog, machine, mapping=plan.mapping, control_mapping=plan.control_mapping
    )
    result = runtime.run()
    return {
        "time": result.time,
        "strategy": plan.control_strategy.value if plan.control_strategy else "none",
        "local_fraction": result.metrics.local_fraction,
    }


def control_strategy_comparison(
    iterations: int = 3, n_workers: int = 1, seeds: int = 1, base_seed: int = 1
) -> dict[str, dict[str, float]]:
    """A3: LK23 with the three control-thread branches.

    Scenarios: (a) a hyperthreaded 4×8×2 machine with one task per core
    (→ HYPERTHREAD_RESERVED: compute on one hyperthread per core,
    control on the sibling); (b) a 64-core machine with only 4 tasks —
    every communication/control thread fits on a spare core (→
    SPARE_CORES); (c) a 32-core machine with 32 tasks — no room at all
    (→ UNMAPPED).  Returns simulated time and the strategy that fired.

    The scenarios are independent simulations; *n_workers* > 1 (or 0 =
    host cores) fans them out via :class:`repro.exec.SweepRunner`.
    With *seeds* > 1 each scenario is replicated over derived seeds and
    the returned rows gain ``time_mean`` / ``time_stddev`` /
    ``time_ci_lo`` / ``time_ci_hi`` / ``n_seeds`` keys.
    """
    names = list(_CONTROL_SCENARIOS)
    sweep = run_replicated(
        [
            ReplicateSpec(
                _control_scenario, dict(name=n, iterations=iterations),
                key=(n,), label=n,
            )
            for n in names
        ],
        seeds=seeds,
        base_seed=base_seed,
        scope="ablation-control",
        value_of=lambda row: row["time"],
        n_workers=n_workers,
    )
    return {
        p.key[0]: (
            p.first if seeds == 1 else _attach_time_stats(p.first, p.stats)
        )
        for p in sweep.points
    }


def _oversub_point(factor: int, iterations: int, seed: int = 2) -> dict[str, float]:
    """One A4 oversubscription factor; module-level for the runner."""
    topo = presets.paper_smp(8, 8)  # 64 cores
    n_tasks = topo.nb_pus * factor
    rows, cols = patterns.square_grid_shape(n_tasks)
    cfg = Lk23Config(n=8192, grid_rows=rows, grid_cols=cols, iterations=iterations)
    prog = build_program(cfg)
    plan = bind_program(prog, topo, policy="treematch")
    mains = [
        plan.mapping.pu(k)
        for k, op in enumerate(prog.operations())
        if op.is_main
    ]
    from collections import Counter

    max_mains_per_pu = max(Counter(mains).values())
    machine = Machine(topo, seed=seed)
    runtime = Runtime(
        prog, machine, mapping=plan.mapping, control_mapping=plan.control_mapping
    )
    result = runtime.run()
    return {
        "factor": float(factor),
        "n_tasks": float(n_tasks),
        "time": result.time,
        "max_mains_per_pu": float(max_mains_per_pu),
    }


def oversubscription_study(
    factors: Sequence[int] = (1, 2, 4),
    iterations: int = 3,
    n_workers: int = 1,
    seeds: int = 1,
    base_seed: int = 2,
) -> list[dict[str, float]]:
    """A4: tasks = factor × cores on an 8-socket machine.

    Checks that the virtual-level extension keeps the load balanced
    (max PU load == factor) and reports the simulated time per factor.
    Factors are independent runs; *n_workers* fans them out via
    :class:`repro.exec.SweepRunner` (1 = serial reference path).  With
    *seeds* > 1 each factor is replicated over derived seeds and the
    rows gain ``time_mean`` / ``time_stddev`` / ``time_ci_*`` /
    ``n_seeds`` keys.
    """
    sweep = run_replicated(
        [
            ReplicateSpec(
                _oversub_point, dict(factor=f, iterations=iterations),
                key=(f,), label=f"x{f}",
            )
            for f in factors
        ],
        seeds=seeds,
        base_seed=base_seed,
        scope="ablation-oversub",
        value_of=lambda row: row["time"],
        n_workers=n_workers,
    )
    return [
        p.first if seeds == 1 else _attach_time_stats(p.first, p.stats)
        for p in sweep.points
    ]


def affinity_extraction_fidelity(iterations: int = 3) -> dict[str, float]:
    """A5: correlation between the static matrix and a traced run.

    Runs LK23 once with tracing, then correlates the trace-derived
    matrix with the static (composition-derived) one.  High correlation
    validates launch-time mapping from structure alone.
    """
    topo = presets.paper_smp(2, 8)
    cfg = Lk23Config(n=2048, grid_rows=4, grid_cols=4, iterations=iterations)
    prog = build_program(cfg)
    plan = bind_program(prog, topo, policy="treematch")
    machine = Machine(topo, seed=3)
    runtime = Runtime(
        prog, machine, mapping=plan.mapping, control_mapping=plan.control_mapping
    )
    result = runtime.run()
    assert result.tracer is not None
    # Compare pure payload volumes (hints express footprint, not traffic).
    static = static_matrix(prog, use_affinity_hints=False)
    traced = traced_matrix(prog, result.tracer)
    return {
        "correlation": matrix_correlation(static, traced),
        "static_total": static.total_volume(),
        "traced_total": traced.total_volume(),
        "trace_events": float(result.tracer.n_events),
    }
