"""Tests for grant-message latency, scaling efficiency, and model
stability across seeds."""

import pytest

from repro.experiments.fig1 import Fig1Point, Fig1Result
from repro.orwl import AccessMode, Program, Runtime, RuntimeConfig
from repro.simulate.machine import Machine
from repro.treematch.mapping import Mapping


def _grant_latency_program(iterations=50):
    """Two ops ping-ponging a zero-byte lock: the total time is
    dominated by grant service + grant-message latency."""
    prog = Program("grants")
    loc = prog.location("l", 0, owner_task="a")
    a = prog.task("a").operation("main", body=None)
    ha = a.handle(loc, AccessMode.WRITE)

    def wa(ctx):
        for _ in range(iterations):
            yield from ctx.acquire(ha)
            ctx.next(ha)

    a.body = wa
    b = prog.task("b").operation("main", body=None)
    hb = b.handle(loc, AccessMode.WRITE)

    def wb(ctx):
        for _ in range(iterations):
            yield from ctx.acquire(hb)
            ctx.next(hb)

    b.body = wb
    return prog


class TestGrantMessageLatency:
    def test_far_waiter_pays_more(self, small_topo):
        """Moving the waiter across the machine increases total time
        even with zero payload: grant messages follow the topology."""
        times = {}
        for key, pus in [("near", (0, 1)), ("far", (0, 4))]:
            prog = _grant_latency_program()
            machine = Machine(small_topo, seed=0)
            # Bind control threads next to the location owner.
            rt = Runtime(
                prog,
                machine,
                mapping=Mapping(pus),
                control_mapping=Mapping((0, pus[1])),
            )
            times[key] = rt.run().time
        assert times["far"] > times["near"]

    def test_direct_grants_skip_message_latency(self, small_topo):
        prog = _grant_latency_program()
        machine = Machine(small_topo, seed=0)
        rt = Runtime(
            prog, machine, mapping=Mapping((0, 4)),
            config=RuntimeConfig(control_threads=False, direct_grant_latency=0.0),
        )
        t_direct = rt.run().time
        prog2 = _grant_latency_program()
        machine2 = Machine(small_topo, seed=0)
        rt2 = Runtime(
            prog2, machine2, mapping=Mapping((0, 4)),
            control_mapping=Mapping((0, 0)),
        )
        t_ctl = rt2.run().time
        assert t_ctl > t_direct


class TestEfficiency:
    def _result(self):
        res = Fig1Result()
        for cores, t in [(8, 8.0), (16, 4.4), (32, 2.4)]:
            res.points.append(Fig1Point("orwl-bind", cores, t, 1.0, 0, 0.0))
        return res

    def test_speedup_curve(self):
        curve = self._result().speedup_curve("orwl-bind")
        assert curve[0] == (8, 1.0)
        assert curve[1][1] == pytest.approx(8.0 / 4.4)

    def test_efficiency(self):
        res = self._result()
        # 32 cores: speedup 8/2.4 = 3.33 vs ideal 4 -> 0.83
        assert res.efficiency("orwl-bind", 32) == pytest.approx((8 / 2.4) / 4)
        assert res.efficiency("orwl-bind", 8) == pytest.approx(1.0)

    def test_efficiency_unknown(self):
        with pytest.raises(KeyError):
            Fig1Result().efficiency("orwl-bind", 8)

    def test_table_with_efficiency(self):
        table = self._result().table(show_efficiency=True)
        assert "(100%)" in table  # the base point
        assert "%" in table.splitlines()[3]

    @pytest.mark.slow
    def test_bind_scaling_efficiency_floor(self):
        """ORWL-Bind keeps ≥ 55 % strong-scaling efficiency to 96 cores
        on the paper workload (8 -> 96 is a 12x ideal)."""
        from repro.experiments.fig1 import run_fig1

        res = run_fig1(core_counts=(8, 96), iterations=3, n=16384,
                       implementations=("orwl-bind",))
        assert res.efficiency("orwl-bind", 96) > 0.55


class TestSeedStability:
    @pytest.mark.slow
    def test_nobind_variance_bounded(self):
        """The NoBind model is noisy by design, but not wildly so: the
        spread across seeds stays within ±35 % of the median."""
        from repro.experiments.fig1 import run_point

        times = [
            run_point("orwl-nobind", 32, iterations=3, n=8192, seed=s).time
            for s in (0, 1, 2)
        ]
        med = sorted(times)[1]
        assert max(times) < 1.35 * med
        assert min(times) > 0.65 * med

    def test_fully_bound_seed_invariant(self):
        """When *everything* is bound (spare-cores control branch), no
        scheduler randomness remains: identical times across seeds."""
        from repro import run_lk23

        t0 = run_lk23(topology="small-numa", tasks=2, iterations=2, n=1024, seed=0)
        t1 = run_lk23(topology="small-numa", tasks=2, iterations=2, n=1024, seed=7)
        assert t0.plan.mapping.bound_fraction() == 1.0  # all threads bound
        assert t0.time == t1.time

    def test_bind_nearly_seed_invariant_when_control_unbound(self):
        """With the paper's UNMAPPED control branch only the (cheap)
        control threads float, so seeds move the time < 5 %."""
        from repro.experiments.fig1 import run_point

        t0 = run_point("orwl-bind", 8, iterations=2, n=2048, seed=0).time
        t1 = run_point("orwl-bind", 8, iterations=2, n=2048, seed=7).time
        assert t1 == pytest.approx(t0, rel=0.05)
