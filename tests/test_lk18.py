"""Tests for Livermore Kernel 18 (2-D explicit hydrodynamics)."""

import numpy as np
import pytest

from repro.kernels import lk18 as k18
from repro.kernels.lk23_orwl import build_program
from repro.orwl import Runtime
from repro.placement import bind_program
from repro.simulate.machine import Machine
from repro.util.validate import ValidationError


class TestNumerics:
    def test_vectorized_matches_reference_one_step(self):
        f = k18.make_fields(8, seed=1)
        ref = k18.lk18_reference(f, steps=1)
        vec = k18.lk18(f, steps=1)
        for name in ("zr", "zz", "zu", "zv"):
            assert np.allclose(
                getattr(ref, name), getattr(vec, name), rtol=0, atol=0
            ), name

    def test_vectorized_matches_reference_multi_step(self):
        f = k18.make_fields(6, seed=2)
        ref = k18.lk18_reference(f, steps=3)
        vec = k18.lk18(f, steps=3)
        for name in ("zr", "zz", "zu", "zv"):
            assert np.array_equal(getattr(ref, name), getattr(vec, name)), name

    def test_boundary_untouched(self):
        f = k18.make_fields(7, seed=3)
        out = k18.lk18_step(f)
        assert np.array_equal(out.zr[0, :], f.zr[0, :])
        assert np.array_equal(out.zz[:, -1], f.zz[:, -1])
        assert np.array_equal(out.zu[-1, :], f.zu[-1, :])

    def test_inputs_not_mutated(self):
        f = k18.make_fields(6, seed=4)
        snapshot = {n: getattr(f, n).copy() for n in ("zp", "zq", "zr", "zm", "zz", "zu", "zv")}
        k18.lk18(f, steps=2)
        k18.lk18_reference(f, steps=1)
        for n, before in snapshot.items():
            assert np.array_equal(getattr(f, n), before), n

    def test_step_changes_interior(self):
        f = k18.make_fields(6, seed=5)
        out = k18.lk18_step(f)
        assert not np.array_equal(out.zr[1:-1, 1:-1], f.zr[1:-1, 1:-1])

    def test_validation(self):
        with pytest.raises(ValidationError):
            k18.make_fields(2)
        f = k18.make_fields(5)
        with pytest.raises(ValidationError):
            k18.lk18(f, steps=0)
        with pytest.raises(ValidationError):
            k18.lk18_reference(f, steps=0)

    def test_fields_shape_check(self):
        f = k18.make_fields(5)
        with pytest.raises(ValidationError):
            k18.Lk18Fields(f.zp, f.zq[:3, :3], f.zr, f.zm, f.zz, f.zu, f.zv)


class TestOrwlWorkload:
    def test_config_shape(self):
        cfg = k18.orwl_config(n=1024, grid_rows=2, grid_cols=2, iterations=4)
        assert cfg.iterations == 12  # three exchanges per time step
        assert cfg.element_bytes == 56  # seven 8-byte fields
        assert cfg.grid.n_blocks == 4

    def test_runs_under_placement(self, small_topo):
        cfg = k18.orwl_config(n=512, grid_rows=2, grid_cols=2, iterations=2)
        prog = build_program(cfg)
        plan = bind_program(prog, small_topo, policy="treematch")
        m = Machine(small_topo, seed=1)
        rt = Runtime(prog, m, mapping=plan.mapping, control_mapping=plan.control_mapping)
        res = rt.run()
        assert res.time > 0

    def test_binding_beats_nobind(self, paper_topo_small):
        times = {}
        for policy in ("treematch", "nobind"):
            cfg = k18.orwl_config(n=4096, grid_rows=4, grid_cols=8, iterations=2)
            prog = build_program(cfg)
            plan = bind_program(prog, paper_topo_small, policy=policy)
            m = Machine(paper_topo_small, seed=1)
            rt = Runtime(prog, m, mapping=plan.mapping,
                         control_mapping=plan.control_mapping)
            times[policy] = rt.run().time
        assert times["treematch"] < times["nobind"]
