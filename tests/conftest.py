"""Shared fixtures: small topologies and matrices used across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import patterns
from repro.comm.matrix import CommMatrix
from repro.topology import presets
from repro.topology.builder import TopologyBuilder, flat_topology
from repro.topology.objects import ObjType


@pytest.fixture
def small_topo():
    """2 NUMA nodes × 4 cores = 8 PUs."""
    return presets.small_numa(2, 4)


@pytest.fixture
def ht_topo():
    """2 NUMA nodes × 2 cores × 2 hyperthreads = 8 PUs."""
    return (
        TopologyBuilder("ht-test")
        .add_level(ObjType.NUMANODE, 2)
        .add_level(ObjType.PACKAGE, 1)
        .add_level(ObjType.L3, 1)
        .add_level(ObjType.CORE, 2)
        .add_level(ObjType.PU, 2)
        .build()
    )


@pytest.fixture
def flat8():
    """8 PUs, one level of cores, no NUMA."""
    return flat_topology(8)


@pytest.fixture
def paper_topo_small():
    """A 4-socket slice of the paper's machine (32 PUs) — fast tests."""
    return presets.paper_smp(4, 8)


@pytest.fixture
def stencil_matrix():
    """4×4 block stencil affinity (order 16)."""
    return patterns.stencil_2d(4, 4, edge_volume=100.0)


@pytest.fixture
def clustered_matrix():
    """2 clusters of 4 with a known optimal grouping (order 8)."""
    return patterns.clustered(2, 4, intra_volume=100.0, inter_volume=1.0, seed=7)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
