"""Tests for heterogeneous core rates and per-thread statistics."""

import pytest

from repro.simulate import Compute, ComputeFlops, Machine, Receive, Wait
from repro.simulate.engine import SimulationError


class TestComputeFlops:
    def test_priced_at_pu_rate(self, small_topo):
        m = Machine(small_topo, seed=0, core_rate=1e9, core_rate_of={1: 2e9})
        slow = m.add_thread("slow", bound_pu_os=0)
        fast = m.add_thread("fast", bound_pu_os=1)
        m.set_body(slow, iter([ComputeFlops(1e9)]))
        m.set_body(fast, iter([ComputeFlops(1e9)]))
        m.run()
        assert m.thread_stats(slow)["compute_time"] == pytest.approx(1.0)
        assert m.thread_stats(fast)["compute_time"] == pytest.approx(0.5)

    def test_default_rate_uniform(self, small_topo):
        m = Machine(small_topo, seed=0, core_rate=4e9)
        tid = m.add_thread("t", bound_pu_os=3)
        m.set_body(tid, iter([ComputeFlops(2e9)]))
        assert m.run() == pytest.approx(0.5)

    def test_unknown_pu_in_rates_rejected(self, small_topo):
        with pytest.raises(SimulationError):
            Machine(small_topo, core_rate_of={99: 1e9})

    def test_nonpositive_rate_rejected(self, small_topo):
        with pytest.raises(Exception):
            Machine(small_topo, core_rate_of={0: 0.0})

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            ComputeFlops(-1)

    def test_orwl_compute_flops_heterogeneous(self, small_topo):
        """ORWL bodies using flops feel the PU speed they land on."""
        from repro.orwl import AccessMode, Program, Runtime
        from repro.treematch.mapping import Mapping

        times = {}
        for pu, rate_map in [(0, {0: 1e9}), (1, {1: 4e9})]:
            prog = Program("het")
            loc = prog.location("l", 0, owner_task="t")
            op = prog.task("t").operation("main", body=None)
            h = op.handle(loc, AccessMode.WRITE)

            def body(ctx, h=h):
                yield from ctx.acquire(h)
                yield ctx.compute(flops=2e9)
                ctx.release(h)

            op.body = body
            machine = Machine(small_topo, seed=0, core_rate=2e9,
                              core_rate_of=rate_map)
            rt = Runtime(prog, machine, mapping=Mapping((pu,)))
            times[pu] = rt.run().time
        assert times[0] > times[1]


class TestThreadStats:
    def test_stats_breakdown(self, small_topo):
        m = Machine(small_topo, seed=0)
        ev = m.new_event()
        prod = m.add_thread("p", bound_pu_os=0)
        cons = m.add_thread("c", bound_pu_os=4)

        def producer():
            yield Compute(0.5)
            ev.fire()

        def consumer():
            yield Wait(ev)
            yield Receive(prod, 1 << 20)

        m.set_body(prod, producer())
        m.set_body(cons, consumer())
        m.run()
        p = m.thread_stats(prod)
        c = m.thread_stats(cons)
        assert p["compute_time"] == pytest.approx(0.5)
        assert p["wait_time"] == 0.0
        assert c["wait_time"] == pytest.approx(0.5)
        assert c["transfer_time"] > 0
        assert c["compute_time"] == 0.0

    def test_sum_matches_global_metrics(self, small_topo):
        m = Machine(small_topo, seed=0)
        tids = [m.add_thread(f"t{k}", bound_pu_os=k) for k in range(4)]
        for tid in tids:
            m.set_body(tid, iter([Compute(0.25), Compute(0.25)]))
        m.run()
        total = sum(m.thread_stats(t)["compute_time"] for t in tids)
        assert total == pytest.approx(m.metrics.compute_time)

    def test_migration_count_per_thread(self, small_topo):
        from repro.simulate.scheduler import SchedulerConfig

        m = Machine(
            small_topo, seed=1,
            scheduler=SchedulerConfig(migration_quantum=0.01, migration_prob=1.0,
                                      imbalance_threshold=1e9),
        )
        tid = m.add_thread("t")
        m.set_body(tid, iter([Compute(0.05) for _ in range(10)]))
        m.run()
        assert m.thread_stats(tid)["migrations"] == m.metrics.migrations
