"""Benchmark-trajectory harness: measure, don't guess.

Emits one ``BENCH_<stamp>.json`` per invocation so the repo accumulates
a performance trajectory across commits.  Sections:

* ``engine`` — raw event-loop throughput: :meth:`Engine.run`'s drain
  loop vs a bare ``while engine.step(): pass`` reference, in
  events/second, on a self-rescheduling ping workload.  ``run`` should
  stay within noise of the bare loop (it adds only the runaway guard);
  a ratio well below 1.0 flags an event-loop regression.
* ``cohort`` — the headline of the batched-engine refactor: barrier
  cohorts on the paper's 192-PU preset drained by the batched engine
  vs the scalar reference, in events/second, with the
  ``batched_over_scalar`` speedup (gated at >= 10x by
  ``benchmarks/bench_engine_throughput.py``).
* ``fig1`` — the experiment that matters: a Figure-1 sweep run serially
  (``n_workers=1``, the reference path) and through the process pool
  (``n_workers=0`` = all host cores), with wall-clock seconds, speedup,
  runner stats, and a bit-identity verdict from the per-point
  determinism fingerprints.
* ``treematch`` — Algorithm 1 wall time per matrix order (the
  launch-time mapping must stay cheap).
* ``cache`` — the content-addressed sweep cache: the same replicated
  sweep run cold (empty store) and warm (fully populated), with both
  walls, the warm speedup, per-run hit/miss/store counters, and a
  bit-identity verdict between the cold and cached results.  Skipped
  under ``--no-cache``.
* ``dag`` — the :mod:`repro.tasks` layer: DAG compile throughput
  (tasks/second through ``compile_graph``) and the E7 placement sweep
  run serially vs through the process pool, with per-workload simulated
  means, Bind-vs-NoBind speedups, and a bit-identity verdict from the
  per-point run fingerprints (gated by
  ``benchmarks/bench_dag_workloads.py``).

Usage::

    python -m repro.tools.bench                # full measurement
    python -m repro.tools.bench --quick        # CI-sized, ~seconds
    python -m repro.tools.bench --output BENCH_ci.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Any

from repro.exec.runner import SweepRunner, resolve_workers
from repro.experiments.ablations import treematch_cost_curve
from repro.experiments.fig1 import run_fig1
from repro.simulate.engine import Engine, SimEvent
from repro.tools._cache_args import add_cache_arguments, apply_cache_arguments
from repro.topology import presets


def _engine_throughput(n_events: int, mode: str) -> dict[str, float]:
    """Events/second of one drained engine using ``run`` or ``step``."""
    eng = Engine()
    count = 0

    def tick() -> None:
        nonlocal count
        count += 1
        if count < n_events:
            eng.schedule(1.0, tick)

    eng.schedule(0.0, tick)
    t0 = time.perf_counter()
    if mode == "run":
        eng.run()
    else:
        while eng.step():
            pass
    wall = time.perf_counter() - t0
    return {
        "events": float(eng.events_fired),
        "wall_s": wall,
        "events_per_sec": eng.events_fired / wall if wall > 0 else 0.0,
    }


def bench_engine(n_events: int) -> dict[str, Any]:
    """``run`` drain loop vs bare ``step`` loop event throughput."""
    stepped = _engine_throughput(n_events, "step")
    run_loop = _engine_throughput(n_events, "run")
    return {
        "n_events": n_events,
        "stepped": stepped,
        "run_loop": run_loop,
        "run_over_stepped": (
            run_loop["events_per_sec"] / stepped["events_per_sec"]
            if stepped["events_per_sec"] > 0 else 0.0
        ),
    }


def _cohort_drain(mode: str, width: int, rounds: int) -> dict[str, float]:
    """Drain *rounds* pre-fired barrier wakeups of *width* waiters each."""
    eng = Engine(mode=mode)
    waiters = [lambda: None for _ in range(width)]
    for r in range(rounds):
        ev = SimEvent(eng, "barrier")
        for cb in waiters:
            ev.wait(cb)
        ev.fire(delay=float(r))
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    return {
        "events": float(eng.events_fired),
        "wall_s": wall,
        "events_per_sec": eng.events_fired / wall if wall > 0 else 0.0,
    }


def bench_cohort(rounds: int, preset: str = "paper-smp") -> dict[str, Any]:
    """Batched vs scalar cohort-dispatch throughput on the paper preset.

    The schedule (one barrier wakeup of ``nb_pus`` waiters per round) is
    built untimed; only the ``engine.run()`` drain is measured, so the
    number is pure event-dispatch throughput.  Both engines fire the
    same events to the same final clock — the speedup is the cohort
    machinery, not reduced work.
    """
    width = presets.by_name(preset).nb_pus
    scalar = _cohort_drain("scalar", width, rounds)
    batched = _cohort_drain("batched", width, rounds)
    return {
        "preset": preset,
        "width_pus": width,
        "rounds": rounds,
        "scalar": scalar,
        "batched": batched,
        "batched_over_scalar": (
            batched["events_per_sec"] / scalar["events_per_sec"]
            if scalar["events_per_sec"] > 0 else 0.0
        ),
    }


def bench_fig1(
    core_counts: tuple[int, ...], iterations: int, n: int, seed: int,
    seeds: int = 1,
) -> dict[str, Any]:
    """Serial vs parallel Figure-1 sweep: wall clock + bit-identity.

    With *seeds* > 1 every point runs that many replicates; the report
    then carries per-point variance rows (mean / stddev / bootstrap CI)
    and pairwise speedup-significance verdicts, so the BENCH trajectory
    records spread, not just point estimates.  Bit-identity is checked
    across *all* replicates of both sweeps.

    ``point_cache=False`` on both sweeps: this section measures *cold*
    simulation walls, so the content-addressed point cache must not
    serve the parallel run the serial run's results (the cached path
    has its own section, ``cache``).
    """
    serial_runner = SweepRunner(n_workers=1)
    t0 = time.perf_counter()
    serial = run_fig1(
        core_counts=core_counts, iterations=iterations, n=n, seed=seed,
        fingerprint=True, runner=serial_runner, seeds=seeds,
        point_cache=False,
    )
    serial_wall = time.perf_counter() - t0

    parallel_runner = SweepRunner(n_workers=0)
    t0 = time.perf_counter()
    parallel = run_fig1(
        core_counts=core_counts, iterations=iterations, n=n, seed=seed,
        fingerprint=True, runner=parallel_runner, seeds=seeds,
        point_cache=False,
    )
    parallel_wall = time.perf_counter() - t0

    serial_reps = [p for reps in serial.replicates.values() for p in reps]
    parallel_reps = [p for reps in parallel.replicates.values() for p in reps]
    identical = [
        (a.implementation, a.n_cores) == (b.implementation, b.n_cores)
        and a.time == b.time
        and a.fingerprint == b.fingerprint
        for a, b in zip(serial_reps, parallel_reps)
    ]
    report: dict[str, Any] = {
        "core_counts": list(core_counts),
        "iterations": iterations,
        "n": n,
        "seeds": seeds,
        "n_points": len(serial.points),
        "n_runs": len(serial_reps),
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "parallel_stats": parallel_runner.last_stats,
        "bit_identical": all(identical) and len(identical) == len(serial_reps),
    }
    if seeds > 1:
        report["stats"] = [
            {
                "implementation": impl,
                "cores": cores,
                "n": s.n,
                "mean": s.mean,
                "median": s.median,
                "stddev": s.stddev,
                "ci_lo": s.ci_lo,
                "ci_hi": s.ci_hi,
                "confidence": s.confidence,
            }
            for (impl, cores), s in sorted(serial.seed_stats.items())
        ]
        report["significance"] = [
            {
                "baseline": v.baseline,
                "candidate": v.candidate,
                "speedup_mean": v.speedup_mean,
                "speedup_ci": [v.speedup_ci_lo, v.speedup_ci_hi],
                "p_value": v.p_value,
                "verdict": v.verdict,
                "method": v.method,
            }
            for v in serial.speedup_verdicts()
        ]
    return report


def bench_treematch(orders: tuple[int, ...]) -> dict[str, Any]:
    """Algorithm 1 cost per matrix order."""
    curve = treematch_cost_curve(orders=orders)
    return {"orders": list(orders), "seconds": [s for _, s in curve]}


def bench_sweep_cache(
    core_counts: tuple[int, ...], iterations: int, n: int, seed: int,
    seeds: int = 5,
) -> dict[str, Any]:
    """Cold vs warm replicated sweep through the content-addressed cache.

    Runs the same serial Figure-1 sweep twice against one throwaway
    on-disk :class:`~repro.exec.cache.PointCache`: first cold (every
    point is a miss and gets stored), then warm (every point is served
    from the store without simulating).  The warm results must be
    byte-for-byte the cold ones — the determinism fingerprints pin it —
    and the warm wall is the incremental-rerun headline the cache gate
    (``benchmarks/bench_sweep_cache.py``) holds at >= 5x.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.exec.cache import PointCache

    tmp = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    try:
        cold_cache = PointCache(tmp / "points")
        t0 = time.perf_counter()
        cold = run_fig1(
            core_counts=core_counts, iterations=iterations, n=n, seed=seed,
            fingerprint=True, n_workers=1, seeds=seeds,
            point_cache=cold_cache,
        )
        cold_wall = time.perf_counter() - t0

        warm_cache = PointCache(tmp / "points")
        t0 = time.perf_counter()
        warm = run_fig1(
            core_counts=core_counts, iterations=iterations, n=n, seed=seed,
            fingerprint=True, n_workers=1, seeds=seeds,
            point_cache=warm_cache,
        )
        warm_wall = time.perf_counter() - t0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    cold_reps = [p for reps in cold.replicates.values() for p in reps]
    warm_reps = [p for reps in warm.replicates.values() for p in reps]
    identical = [
        (a.implementation, a.n_cores) == (b.implementation, b.n_cores)
        and a.time == b.time
        and a.fingerprint == b.fingerprint
        for a, b in zip(cold_reps, warm_reps)
    ]
    warm_lookups = warm_cache.hits + warm_cache.misses
    return {
        "core_counts": list(core_counts),
        "iterations": iterations,
        "n": n,
        "seeds": seeds,
        "n_runs": len(cold_reps),
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "warm_speedup": cold_wall / warm_wall if warm_wall > 0 else 0.0,
        "cold_stats": cold_cache.stats(),
        "warm_stats": warm_cache.stats(),
        "warm_hit_rate": (
            warm_cache.hits / warm_lookups if warm_lookups else 0.0
        ),
        "bit_identical": all(identical) and len(identical) == len(cold_reps),
    }


def bench_placement_service(
    warm_samples: int = 200, concurrent: int = 2000
) -> dict[str, Any]:
    """Cold/warm decision latency and concurrent throughput of the
    placement service on the paper preset (192 PUs, 192 threads).

    The headline numbers the latency gate
    (``benchmarks/bench_placement_service.py``) holds: warm >= 10x
    cold, warm p50 < 1 ms, >= 1000 queries/sec under *concurrent*
    simultaneous requests.  Every warm and concurrent answer is checked
    byte-identical to the cold decision.
    """
    import asyncio

    from repro.comm import patterns
    from repro.exec.cache import clear_cache
    from repro.placement.service import PlacementService
    from repro.topology import presets

    clear_cache()
    topo = presets.paper_smp(24, 8)
    matrix = patterns.stencil_2d(16, 12, edge_volume=1000.0)
    service = PlacementService(topo)

    t0 = time.perf_counter()
    cold = service.query_sync(matrix)
    cold_wall = time.perf_counter() - t0

    samples = []
    identical = True
    for _ in range(warm_samples):
        t0 = time.perf_counter()
        decision = service.query_sync(matrix)
        samples.append(time.perf_counter() - t0)
        identical = identical and decision.mapping.pu_of == cold.mapping.pu_of
    samples.sort()
    p50 = samples[len(samples) // 2]
    p99 = samples[int(len(samples) * 0.99)]

    async def flood():
        return await asyncio.gather(
            *[service.query(matrix) for _ in range(concurrent)]
        )

    t0 = time.perf_counter()
    decisions = asyncio.run(flood())
    concurrent_wall = time.perf_counter() - t0
    identical = identical and all(
        d.mapping.pu_of == cold.mapping.pu_of for d in decisions
    )

    return {
        "topology": topo.name,
        "n_pus": topo.nb_pus,
        "matrix_order": matrix.order,
        "cold_wall_s": cold_wall,
        "warm_samples": warm_samples,
        "warm_p50_s": p50,
        "warm_p99_s": p99,
        "warm_speedup": cold_wall / p50 if p50 > 0 else 0.0,
        "concurrent_requests": concurrent,
        "concurrent_wall_s": concurrent_wall,
        "queries_per_s": (
            concurrent / concurrent_wall if concurrent_wall > 0 else 0.0
        ),
        "bit_identical": identical,
    }


def bench_dag(
    seeds: int = 3, n_cores: int = 16, scale: int = 2, seed: int = 0
) -> dict[str, Any]:
    """DAG compile throughput plus the E7 sweep serial vs parallel.

    Compile throughput is tasks/second through
    :func:`repro.tasks.compile_graph` over the three workload families
    (graph build included — the number a user-facing frontend spends
    before the first simulated event).  The sweep half mirrors the
    ``fig1`` section: the same E7 run serially and through the process
    pool with ``point_cache=False``, every replicate fingerprinted, and
    a bit-identity verdict across all of them.  Per-workload simulated
    means and Bind-vs-NoBind speedups are the deterministic rows the
    regression gate checks.
    """
    from repro.experiments.dag import build_workload, run_dag
    from repro.tasks import compile_graph

    compile_rows = []
    for workload in ("cholesky", "bfs", "divconq"):
        t0 = time.perf_counter()
        graph = build_workload(workload, scale=scale)
        compile_graph(graph)
        wall = time.perf_counter() - t0
        compile_rows.append({
            "workload": workload,
            "tasks": graph.n_tasks,
            "edges": graph.n_edges,
            "wall_s": wall,
            "tasks_per_sec": graph.n_tasks / wall if wall > 0 else 0.0,
        })

    t0 = time.perf_counter()
    serial = run_dag(
        n_cores=n_cores, scale=scale, seed=seed, seeds=seeds,
        fingerprint=True, n_workers=1, point_cache=False,
    )
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_dag(
        n_cores=n_cores, scale=scale, seed=seed, seeds=seeds,
        fingerprint=True, n_workers=0, point_cache=False,
    )
    parallel_wall = time.perf_counter() - t0

    serial_reps = [p for reps in serial.replicates.values() for p in reps]
    parallel_reps = [p for reps in parallel.replicates.values() for p in reps]
    identical = [
        (a.workload, a.policy) == (b.workload, b.policy)
        and a.time == b.time
        and a.fingerprint == b.fingerprint
        for a, b in zip(serial_reps, parallel_reps)
    ]
    return {
        "n_cores": n_cores,
        "scale": scale,
        "seeds": seeds,
        "compile": compile_rows,
        "n_runs": len(serial_reps),
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "bit_identical": all(identical) and len(identical) == len(serial_reps),
        "stats": [
            {
                "workload": workload,
                "policy": policy,
                "n": s.n,
                "mean": s.mean,
                "median": s.median,
                "stddev": s.stddev,
                "ci_lo": s.ci_lo,
                "ci_hi": s.ci_hi,
                "confidence": s.confidence,
            }
            for (workload, policy), s in sorted(serial.seed_stats.items())
        ],
        "bind_speedups": {
            workload: serial.speedup(workload, "nobind")
            for workload in serial.workloads
        },
    }


def compare_reports(
    current: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = 0.25,
) -> tuple[list[str], list[str]]:
    """The CI perf-regression gate: current report vs committed baseline.

    Only **deterministic** metrics are gated — the per-point *simulated*
    fig1 time means (machine-independent, so a committed baseline is
    portable across CI runners) and the serial/parallel bit-identity
    verdict.  Wall-clock sections (engine throughput, sweep wall time,
    treematch cost) vary with the host and are deliberately ignored.

    A point fails when its current mean exceeds the baseline's CI upper
    bound by more than *threshold* (default 25 %):
    ``mean > ci_hi × (1 + threshold)``.  Returns ``(passed, failed)``
    human-readable check lines; an empty ``failed`` means the gate is
    green.
    """
    passed: list[str] = []
    failed: list[str] = []

    base_fig1 = baseline.get("fig1", {})
    cur_fig1 = current.get("fig1", {})
    base_stats = {
        (row["implementation"], row["cores"]): row
        for row in base_fig1.get("stats", [])
    }
    cur_stats = {
        (row["implementation"], row["cores"]): row
        for row in cur_fig1.get("stats", [])
    }
    if not base_stats:
        failed.append(
            "baseline has no fig1 stats section (regenerate it with "
            "--quick --seeds N, N > 1)"
        )
    if not cur_stats:
        failed.append(
            "current run has no fig1 stats section (run --compare with "
            "--seeds N, N > 1)"
        )
    for key, base_row in sorted(base_stats.items()):
        impl, cores = key
        name = f"{impl}@{cores}"
        cur_row = cur_stats.get(key)
        if cur_row is None:
            failed.append(f"{name}: point missing from current run")
            continue
        limit = base_row["ci_hi"] * (1.0 + threshold)
        line = (
            f"{name}: mean {cur_row['mean']:.6f} vs baseline "
            f"{base_row['mean']:.6f} (limit {limit:.6f})"
        )
        if cur_row["mean"] > limit:
            failed.append(
                f"{line} — regressed "
                f"{cur_row['mean'] / base_row['mean']:.2f}x"
            )
        else:
            passed.append(line)

    if base_fig1.get("bit_identical") and not cur_fig1.get("bit_identical"):
        failed.append(
            "serial/parallel sweeps no longer bit-identical "
            "(baseline was bit-identical)"
        )
    elif "bit_identical" in cur_fig1:
        passed.append(
            f"bit-identical serial/parallel: {cur_fig1['bit_identical']}"
        )

    # The dag section is gated only when the baseline has one, so
    # pre-E7 baseline files keep working unchanged.
    base_dag = baseline.get("dag", {})
    cur_dag = current.get("dag", {})
    if base_dag:
        base_rows = {
            (row["workload"], row["policy"]): row
            for row in base_dag.get("stats", [])
        }
        cur_rows = {
            (row["workload"], row["policy"]): row
            for row in cur_dag.get("stats", [])
        }
        if not cur_rows:
            failed.append(
                "current run has no dag stats section (run --compare with "
                "--seeds N, N > 1)"
            )
        for key, base_row in sorted(base_rows.items()):
            workload, policy = key
            name = f"dag {workload}/{policy}"
            cur_row = cur_rows.get(key)
            if cur_row is None:
                failed.append(f"{name}: point missing from current run")
                continue
            limit = base_row["ci_hi"] * (1.0 + threshold)
            line = (
                f"{name}: mean {cur_row['mean']:.6f} vs baseline "
                f"{base_row['mean']:.6f} (limit {limit:.6f})"
            )
            if cur_row["mean"] > limit:
                failed.append(
                    f"{line} — regressed "
                    f"{cur_row['mean'] / base_row['mean']:.2f}x"
                )
            else:
                passed.append(line)
        if base_dag.get("bit_identical") and not cur_dag.get("bit_identical"):
            failed.append(
                "dag serial/parallel sweeps no longer bit-identical "
                "(baseline was bit-identical)"
            )
        elif "bit_identical" in cur_dag:
            passed.append(
                f"dag bit-identical serial/parallel: "
                f"{cur_dag['bit_identical']}"
            )
    return passed, failed


def _cmd_history(argv: list[str]) -> int:
    """``bench history``: the perf trajectory across accumulated reports.

    Ingests every ``BENCH_*.json`` in a directory plus the committed
    ``benchmarks/baseline_ci.json``, orders them by timestamp, and
    renders per-headline trajectories with sparklines.  Drift is judged
    by :mod:`repro.metrics.history`: deterministic stats rows against
    the oldest run's CI band, wall-clock headlines by half-split
    medians + Cliff's delta.  Exits 1 when any headline drifts (CI can
    gate on it) unless ``--no-check``.
    """
    from repro.metrics.history import (
        history_report,
        load_reports,
        render_history,
    )

    parser = argparse.ArgumentParser(
        prog="repro.tools.bench history",
        description="perf-trajectory regression tracking",
    )
    parser.add_argument("reports", nargs="*", metavar="BENCH.json",
                        help="explicit report files (default: glob "
                             "BENCH_*.json under --dir)")
    parser.add_argument("--dir", default=".",
                        help="directory to glob BENCH_*.json from "
                             "(default: .)")
    parser.add_argument("--baseline", default="benchmarks/baseline_ci.json",
                        help="committed baseline report to prepend "
                             "(default: benchmarks/baseline_ci.json)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative drift tolerance (default 0.25)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full history report as JSON")
    parser.add_argument("--no-check", action="store_true",
                        help="report only; exit 0 even on drift")
    args = parser.parse_args(argv)

    reports = load_reports(
        args.reports or None, directory=args.dir, baseline=args.baseline
    )
    if not reports:
        print("[bench history] no reports found "
              f"(dir={args.dir!r}, baseline={args.baseline!r})")
        return 0 if args.no_check else 1
    result = history_report(reports, threshold=args.threshold)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True, default=str))
    else:
        print(render_history(result))
    if not result["ok"] and not args.no_check:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "history":
        return _cmd_history(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro.tools.bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized configuration (seconds, not minutes)")
    parser.add_argument("--output", metavar="FILE",
                        help="output path (default BENCH_<stamp>.json)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--seeds", type=int, default=1,
                        help="replicates per fig1 point; > 1 adds per-point "
                             "variance rows and significance verdicts to the "
                             "BENCH artifact")
    parser.add_argument("--compare", metavar="BASELINE.json",
                        help="perf-regression gate: compare this run's "
                             "deterministic metrics against a committed "
                             "baseline report; exit nonzero on regression")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="gate tolerance: fail when a mean exceeds the "
                             "baseline CI upper bound by more than this "
                             "fraction (default 0.25)")
    add_cache_arguments(parser)
    args = parser.parse_args(argv)
    apply_cache_arguments(args)

    if args.quick:
        engine_events = 200_000
        cohort_rounds = 300
        core_counts: tuple[int, ...] = (8, 16)
        iterations, n = 2, 1024
        tm_orders: tuple[int, ...] = (16, 32, 64)
        cache_seeds = 3
    else:
        engine_events = 2_000_000
        cohort_rounds = 1500
        core_counts = (8, 16, 32, 64)
        iterations, n = 3, 8192
        tm_orders = (16, 32, 64, 128, 256)
        cache_seeds = 5

    host_cores = resolve_workers(None)
    report: dict[str, Any] = {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "host_cores": host_cores,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "quick": args.quick,
        }
    }

    print(f"[bench] engine throughput ({engine_events} events)...")
    report["engine"] = bench_engine(engine_events)
    e = report["engine"]
    print(f"  stepped: {e['stepped']['events_per_sec']:,.0f} ev/s   "
          f"run: {e['run_loop']['events_per_sec']:,.0f} ev/s   "
          f"ratio: {e['run_over_stepped']:.2f}x")

    print(f"[bench] cohort dispatch, batched vs scalar "
          f"({cohort_rounds} barrier rounds on paper-smp)...")
    report["cohort"] = bench_cohort(cohort_rounds)
    c = report["cohort"]
    print(f"  scalar: {c['scalar']['events_per_sec']:,.0f} ev/s   "
          f"batched: {c['batched']['events_per_sec']:,.0f} ev/s   "
          f"speedup: {c['batched_over_scalar']:.1f}x")

    print(f"[bench] fig1 sweep serial vs parallel "
          f"(cores={list(core_counts)}, seeds={args.seeds}, "
          f"host has {host_cores} CPU(s))...")
    report["fig1"] = bench_fig1(core_counts, iterations, n, args.seed,
                                seeds=args.seeds)
    f = report["fig1"]
    print(f"  serial: {f['serial_wall_s']:.2f}s   "
          f"parallel[{f['parallel_stats'].get('n_workers')}w]: "
          f"{f['parallel_wall_s']:.2f}s   speedup: {f['speedup']:.2f}x   "
          f"bit-identical: {f['bit_identical']}")
    if args.seeds > 1:
        for row in f["stats"]:
            print(f"  {row['implementation']:>12}@{row['cores']:<4} "
                  f"mean {row['mean']:.4f}  sd {row['stddev']:.4f}  "
                  f"CI [{row['ci_lo']:.4f}, {row['ci_hi']:.4f}]  (n={row['n']})")
        for v in f["significance"]:
            p = f"p={v['p_value']:.4f}" if v["p_value"] is not None else "p=n/a"
            print(f"  {v['candidate']} vs {v['baseline']}: "
                  f"{v['speedup_mean']:.2f}x {p} -> {v['verdict']}")

    print(f"[bench] treematch cost curve (orders={list(tm_orders)})...")
    report["treematch"] = bench_treematch(tm_orders)

    if args.no_cache:
        print("[bench] sweep cache: skipped (--no-cache)")
    else:
        print(f"[bench] sweep cache cold vs warm "
              f"(cores={list(core_counts)}, seeds={cache_seeds})...")
        report["cache"] = bench_sweep_cache(
            core_counts, iterations, n, args.seed, seeds=cache_seeds
        )
        cc = report["cache"]
        print(f"  cold: {cc['cold_wall_s']:.2f}s   "
              f"warm: {cc['warm_wall_s']:.3f}s   "
              f"speedup: {cc['warm_speedup']:.1f}x   "
              f"hit rate: {cc['warm_hit_rate']:.0%}   "
              f"bit-identical: {cc['bit_identical']}")

    dag_seeds = 3 if args.quick else 5
    dag_cores = 16 if args.quick else 32
    print(f"[bench] dag compile + E7 sweep serial vs parallel "
          f"(cores={dag_cores}, seeds={dag_seeds})...")
    report["dag"] = bench_dag(seeds=dag_seeds, n_cores=dag_cores,
                              seed=args.seed)
    dg = report["dag"]
    for row in dg["compile"]:
        print(f"  compile {row['workload']:>8}: {row['tasks']} tasks in "
              f"{row['wall_s'] * 1e3:.1f}ms "
              f"({row['tasks_per_sec']:,.0f} tasks/s)")
    print(f"  sweep serial: {dg['serial_wall_s']:.2f}s   "
          f"parallel: {dg['parallel_wall_s']:.2f}s   "
          f"speedup: {dg['speedup']:.2f}x   "
          f"bit-identical: {dg['bit_identical']}")
    for workload, s in sorted(dg["bind_speedups"].items()):
        print(f"  bind vs nobind on {workload}: {s:.2f}x")

    ps_concurrent = 1000 if args.quick else 2000
    print(f"[bench] placement service cold/warm latency + "
          f"{ps_concurrent} concurrent queries (paper preset)...")
    report["placement_service"] = bench_placement_service(
        concurrent=ps_concurrent
    )
    ps = report["placement_service"]
    print(f"  cold: {ps['cold_wall_s'] * 1e3:.1f}ms   "
          f"warm p50: {ps['warm_p50_s'] * 1e6:.0f}us   "
          f"speedup: {ps['warm_speedup']:.0f}x   "
          f"throughput: {ps['queries_per_s']:,.0f} q/s   "
          f"bit-identical: {ps['bit_identical']}")

    out = args.output or time.strftime("BENCH_%Y%m%d_%H%M%S.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"[bench] wrote {out}")

    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        passed, failed = compare_reports(
            report, baseline, threshold=args.threshold
        )
        print(f"[bench] regression gate vs {args.compare} "
              f"(threshold {args.threshold:.0%}):")
        for line in passed:
            print(f"  ok   {line}")
        for line in failed:
            print(f"  FAIL {line}")
        if failed:
            print(f"[bench] gate FAILED: {len(failed)} regression(s)")
            return 1
        print(f"[bench] gate passed: {len(passed)} check(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
