"""Ordered read-write lock FIFOs (the heart of the ORWL model).

From the paper's background section: "Tasks executed by one or several
threads concurrently access a resource/location by using a FIFO that
holds requests (requested, allocated, released) issued by threads.  The
manager of the FIFO controls the access order and locks the resource for
some threads or allocates it to the appropriate threads."

Semantics (Clauss & Gustedt, JPDC 2010):

* requests join the queue strictly in insertion order;
* the head request is *granted* (allocated) when the resource frees up;
  consecutive **read** requests at the head are granted together
  (readers share), a **write** request is granted alone (exclusive);
* a granted request stays at the head region until *released*;
* iterative tasks re-insert a fresh request at the tail when releasing
  (``orwl_next``), which yields the deterministic round-robin access
  order that makes ORWL programs livelock- and deadlock-free.

The FIFO is a passive data structure: granting calls the ``on_grant``
callback the runtime supplied (which routes through a control thread or
fires the grant event directly).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Optional


class AccessMode(enum.Enum):
    """Read (shared) or write (exclusive) access."""

    READ = "read"
    WRITE = "write"


class RequestState(enum.Enum):
    PENDING = "pending"  #: queued, not yet allocated
    GRANTED = "granted"  #: allocated; the holder may proceed
    RELEASED = "released"  #: done; no longer in the queue
    CANCELLED = "cancelled"  #: withdrawn before being granted


class Request:
    """One entry of a location FIFO."""

    __slots__ = ("mode", "state", "tag", "payload")

    def __init__(self, mode: AccessMode, tag: str = "") -> None:
        self.mode = mode
        self.state = RequestState.PENDING
        #: free-form identifier (op name) for diagnostics.
        self.tag = tag
        #: runtime-attached object (the grant SimEvent).
        self.payload: object = None

    def __repr__(self) -> str:
        return f"<Request {self.tag!r} {self.mode.value} {self.state.value}>"


class FifoError(RuntimeError):
    """Raised on protocol violations (double release, foreign request...)."""


class OrwlFifo:
    """The request FIFO of one location.

    Parameters
    ----------
    on_grant:
        Callback invoked exactly once per request when it becomes
        granted.  The runtime uses it to wake the owner (directly or via
        a control thread).
    name:
        Diagnostic label (usually the location name).
    """

    def __init__(
        self,
        on_grant: Optional[Callable[[Request], None]] = None,
        name: str = "",
    ) -> None:
        self._queue: Deque[Request] = deque()
        self._on_grant = on_grant or (lambda req: None)
        self.name = name
        #: total requests ever inserted (diagnostics).
        self.inserted = 0

    # -- queue inspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def queue(self) -> tuple[Request, ...]:
        """Snapshot of the queue, head first."""
        return tuple(self._queue)

    def granted_count(self) -> int:
        """Number of currently granted (allocated, unreleased) requests."""
        n = 0
        for req in self._queue:
            if req.state is RequestState.GRANTED:
                n += 1
            else:
                break
        return n

    def holder_modes(self) -> list[AccessMode]:
        return [r.mode for r in self._queue if r.state is RequestState.GRANTED]

    # -- operations ----------------------------------------------------------

    def insert(self, mode: AccessMode, tag: str = "") -> Request:
        """Append a request at the tail; may grant immediately.

        Returns the request object the holder will release later.
        """
        req = Request(mode, tag=tag)
        self._queue.append(req)
        self.inserted += 1
        self._pump()
        return req

    def release(self, req: Request) -> None:
        """Release a granted request, allowing successors to be granted."""
        if req.state is not RequestState.GRANTED:
            raise FifoError(
                f"cannot release request {req!r} in state {req.state.value}"
            )
        try:
            self._queue.remove(req)
        except ValueError:
            raise FifoError(f"request {req!r} is not in FIFO {self.name!r}") from None
        req.state = RequestState.RELEASED
        self._pump()

    def cancel(self, req: Request) -> None:
        """Withdraw a request.  Granted requests are released instead."""
        if req.state is RequestState.GRANTED:
            self.release(req)
            return
        if req.state is not RequestState.PENDING:
            return  # already out of the queue
        self._queue.remove(req)
        req.state = RequestState.CANCELLED
        self._pump()

    # -- grant engine -----------------------------------------------------------

    def _pump(self) -> None:
        """Grant every request that the ordered-RW-lock rules allow.

        Invariant: granted requests always form a prefix of the queue.
        A WRITE is granted only when it is the head and nothing is
        granted; READs are granted while the granted prefix is all-READ.
        """
        granted: list[Request] = []
        while True:
            n_active = self.granted_count()
            if n_active >= len(self._queue):
                break
            nxt = self._queue[n_active]
            assert nxt.state is RequestState.PENDING
            if nxt.mode is AccessMode.WRITE:
                if n_active > 0:
                    break
            else:  # READ: needs the active prefix to be all reads
                if any(
                    self._queue[k].mode is AccessMode.WRITE for k in range(n_active)
                ):
                    break
            nxt.state = RequestState.GRANTED
            granted.append(nxt)
        for req in granted:
            self._on_grant(req)

    def __repr__(self) -> str:
        return f"<OrwlFifo {self.name!r} len={len(self._queue)} granted={self.granted_count()}>"
