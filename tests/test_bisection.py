"""Tests for the recursive-bisection grouping strategy."""

import numpy as np
import pytest

from repro.comm import patterns
from repro.treematch.bisection import group_bisection
from repro.treematch.grouping import group_processes, intra_group_volume
from repro.util.validate import ValidationError


def _is_partition(groups, n, size):
    flat = sorted(i for g in groups for i in g)
    return flat == list(range(n)) and all(len(g) == size for g in groups)


class TestBisection:
    def test_trivial_sizes(self):
        m = np.zeros((4, 4))
        assert group_bisection(m, 4) == [[0, 1, 2, 3]]
        assert group_bisection(m, 1) == [[0], [1], [2], [3]]

    def test_partition_power_of_two(self):
        cm = patterns.random_sparse(32, seed=1)
        groups = group_bisection(np.array(cm.values), 4)
        assert _is_partition(groups, 32, 4)

    def test_partition_odd_group_count(self):
        cm = patterns.random_sparse(24, seed=2)  # 3 groups of 8
        groups = group_bisection(np.array(cm.values), 8)
        assert _is_partition(groups, 24, 8)

    def test_clusters_recovered(self):
        cm = patterns.clustered(4, 4, intra_volume=100, inter_volume=1, seed=5)
        m = np.array(cm.values)
        groups = group_bisection(m, 4)
        per_group = 6 * 100.0
        assert intra_group_volume(m, groups) == pytest.approx(4 * per_group)

    def test_deterministic(self):
        cm = patterns.random_sparse(16, seed=3)
        m = np.array(cm.values)
        assert group_bisection(m, 4) == group_bisection(m, 4)

    def test_dispatch_through_group_processes(self):
        cm = patterns.clustered(2, 4, intra_volume=50, inter_volume=1, seed=4)
        m = np.array(cm.values)
        groups = group_processes(m, 4, strategy="bisection")
        assert _is_partition(groups, 8, 4)

    def test_non_divisible_rejected(self):
        with pytest.raises(ValidationError):
            group_bisection(np.zeros((6, 6)), 4)

    def test_competitive_with_greedy_on_stencil(self):
        cm = patterns.stencil_2d(4, 8, edge_volume=100.0)
        m = np.array(cm.values)
        bis = intra_group_volume(m, group_bisection(m, 4))
        greedy = intra_group_volume(m, group_processes(m, 4, strategy="greedy"))
        # Both heuristics must land in the same quality neighbourhood.
        assert bis > 0.5 * greedy
