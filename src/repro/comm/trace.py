"""Runtime communication tracing.

The paper's add-on "exploit[s] application information as it is gathered
from ORWL runtime to construct a weighted matrix that expresses the
communication volume between threads".  :class:`CommTracer` is that
collector: the ORWL runtime calls :meth:`record` whenever one thread
reads data last written by another, and :meth:`to_matrix` produces the
:class:`~repro.comm.matrix.CommMatrix` the mapping algorithm consumes.

Entities are registered by name so traces stay meaningful when thread
counts vary between runs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional

from repro.comm.matrix import CommMatrix
from repro.util.validate import ValidationError


class CommTracer:
    """Accumulates pairwise communication volumes between named entities."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._names: list[str] = []
        self._volumes: dict[tuple[int, int], float] = defaultdict(float)
        self._events = 0

    # -- registration -----------------------------------------------------

    def register(self, name: str) -> int:
        """Register an entity; returns its stable integer id (idempotent)."""
        if name in self._ids:
            return self._ids[name]
        idx = len(self._names)
        self._ids[name] = idx
        self._names.append(name)
        return idx

    def register_all(self, names: Iterable[str]) -> list[int]:
        """Register several entities, preserving order."""
        return [self.register(n) for n in names]

    def id_of(self, name: str) -> int:
        try:
            return self._ids[name]
        except KeyError:
            raise ValidationError(f"unregistered entity {name!r}") from None

    @property
    def n_entities(self) -> int:
        return len(self._names)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._names)

    @property
    def n_events(self) -> int:
        """Number of recorded communication events."""
        return self._events

    # -- recording -----------------------------------------------------------

    def record(self, src: str, dst: str, nbytes: float) -> None:
        """Record *nbytes* flowing from entity *src* to entity *dst*.

        Unknown entities are registered on the fly; self-communication is
        ignored (it never crosses the hierarchy).
        """
        if nbytes < 0:
            raise ValidationError(f"negative volume {nbytes}")
        i = self.register(src)
        j = self.register(dst)
        if i == j or nbytes == 0:
            return
        key = (i, j) if i < j else (j, i)
        self._volumes[key] += nbytes
        self._events += 1

    def record_by_id(self, src_id: int, dst_id: int, nbytes: float) -> None:
        """Hot-path variant taking pre-registered integer ids."""
        if src_id == dst_id or nbytes <= 0:
            return
        key = (src_id, dst_id) if src_id < dst_id else (dst_id, src_id)
        self._volumes[key] += nbytes
        self._events += 1

    def merge(self, other: "CommTracer") -> None:
        """Fold another tracer's volumes into this one (by entity name)."""
        remap = [self.register(name) for name in other._names]
        for (i, j), vol in other._volumes.items():
            self.record_by_id(remap[i], remap[j], vol)
            self._events -= 1  # merge is not a new event
        self._events += other._events

    def reset_volumes(self) -> None:
        """Clear recorded volumes but keep entity registrations."""
        self._volumes.clear()
        self._events = 0

    # -- export --------------------------------------------------------------

    def volume_between(self, a: str, b: str) -> float:
        i, j = self.id_of(a), self.id_of(b)
        key = (i, j) if i < j else (j, i)
        return self._volumes.get(key, 0.0)

    def to_matrix(self, order: Optional[int] = None) -> CommMatrix:
        """Materialize the trace as a :class:`CommMatrix`.

        *order* may be passed to force the matrix size (>= the number of
        registered entities), e.g. to include silent threads.
        """
        n = len(self._names)
        if order is None:
            order = n
        elif order < n:
            raise ValidationError(f"order {order} < {n} registered entities")
        labels = list(self._names) + [f"silent{k}" for k in range(order - n)]
        edges = [(i, j, vol) for (i, j), vol in self._volumes.items()]
        return CommMatrix.from_edges(order, edges, labels=labels)

    def __repr__(self) -> str:
        total = sum(self._volumes.values())
        return (
            f"<CommTracer {len(self._names)} entities, {self._events} events, "
            f"{total:.3g} bytes>"
        )
