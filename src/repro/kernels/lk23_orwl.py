"""Livermore Kernel 23 as an ORWL program (the paper's decomposition).

Section III of the paper: "for each block we define a main operation
that performs the computation and eight sub-operations that are used to
export the frontier data (edges and corners) to the neighbouring. ...
Each operation is executed by an independent thread and has its own
``orwl_location`` to exchange the shared data with neighbours."

Concretely, per block (r, c) with an in-grid neighbour in direction *d*:

* ``b{r}.{c}/src/{d}`` — written by the block's **main** op after each
  sweep (publishing its fresh frontier), read by the block's own
  **sub-op** *d* (the intra-task hand-off);
* ``b{r}.{c}/out/{d}`` — written by sub-op *d* (the export), read by the
  neighbouring block's main op (the halo import, priced by producer →
  consumer distance).

Per sweep, a main op therefore: imports all halos (reads neighbours'
``out`` locations), streams its block data from its first-touch NUMA
home, computes the block update, and publishes its frontiers (writes
its ``src`` locations).  Sub-op *d* forwards ``src/d`` → ``out/d``.
The FIFO round protocol (``orwl_next``) keeps sweeps coherent without
any global barrier — ORWL's selling point against fork-join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.kernels.lk23 import FLOPS_PER_POINT
from repro.kernels.stencil import BlockGrid
from repro.orwl.fifo import AccessMode
from repro.orwl.handle import Handle
from repro.orwl.program import Program
from repro.util.validate import ValidationError


@dataclass(frozen=True)
class Lk23Config:
    """Workload parameters of one LK23 run.

    Defaults mirror the paper's evaluation (16384² doubles, 100 sweeps);
    benches typically scale ``iterations`` down since simulated time per
    sweep is steady-state after the first round.
    """

    n: int = 16384
    grid_rows: int = 12
    grid_cols: int = 16
    iterations: int = 100
    element_bytes: int = 8
    flops_per_point: float = FLOPS_PER_POINT
    #: fraction of the block footprint streamed from DRAM each sweep
    #: (1.0 = fully memory-resident working set; < 1 models partial
    #: cache residency on machines with large shared L3s).
    stream_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ValidationError("iterations must be > 0")
        if not 0.0 <= self.stream_fraction <= 1.0:
            raise ValidationError("stream_fraction must be in [0, 1]")
        if self.flops_per_point <= 0:
            raise ValidationError("flops_per_point must be > 0")

    @property
    def grid(self) -> BlockGrid:
        return BlockGrid(self.n, self.grid_rows, self.grid_cols, self.element_bytes)

    @classmethod
    def paper(cls, iterations: int = 100) -> "Lk23Config":
        """The paper's exact workload: 16384² doubles on a 12×16 block
        grid (192 blocks = one task per core of the 192-core SMP)."""
        return cls(n=16384, grid_rows=12, grid_cols=16, iterations=iterations)

    @classmethod
    def scaled(cls, n_blocks_rows: int, n_blocks_cols: int, iterations: int = 10,
               n: int = 16384) -> "Lk23Config":
        """The paper's matrix on an arbitrary block grid (core sweeps)."""
        return cls(n=n, grid_rows=n_blocks_rows, grid_cols=n_blocks_cols,
                   iterations=iterations)


def _main_body(cfg: Lk23Config, grid: BlockGrid,
               halo_handles: list[Handle], src_handles: list[Handle]):
    """Body factory for a block's main operation.

    The canonical iterative idiom: publish the *initial* frontier first
    (so neighbours' first halo imports need no compute — without this a
    declaration-order wavefront serializes the first sweep), then per
    sweep: import halos, stream the block's working set from its
    first-touch home, compute, publish fresh frontiers.
    """
    from repro.orwl import idioms
    from repro.simulate.syscalls import ReceiveFromNode  # avoid cycle at import

    block_flops = grid.block_points * cfg.flops_per_point
    stream_bytes = grid.block_bytes * cfg.stream_fraction

    def body(ctx):
        home_node = ctx.current_node()  # first touch: where the thread starts

        def sweep(c, _k):
            if stream_bytes > 0 and home_node >= 0:
                yield ReceiveFromNode(home_node, stream_bytes)
            yield c.compute(flops=block_flops)

        yield from idioms.iterative(
            ctx, cfg.iterations, sweep,
            reads=halo_handles, writes=src_handles, publish_first=True,
        )

    return body


def _sub_body(cfg: Lk23Config, src_handle: Handle, out_handle: Handle):
    """Body factory for a frontier-export sub-operation.

    Per round: pull main's fresh frontier (intra-task, cheap when
    placed together — exactly what TreeMatch arranges), then export it
    for the neighbour.  ``iterations + 1`` rounds: the extra one
    forwards the init frontier.
    """
    from repro.orwl import idioms

    def body(ctx):
        yield from idioms.iterative(
            ctx, cfg.iterations + 1, lambda c, k: iter(()),
            reads=[src_handle], writes=[out_handle], publish_first=False,
        )

    return body


def build_program(
    cfg: Lk23Config,
    block_order: Optional[list[tuple[int, int]]] = None,
) -> Program:
    """Construct the full ORWL LK23 program for *cfg*.

    Declaration order defaults to row-major over blocks, main op first
    then the sub-ops — this order defines thread ids, the init
    protocol's FIFO ordering, and the rows of the extracted affinity
    matrix.  *block_order* overrides it (must be a permutation of all
    block coordinates): affinity-blind placements degrade when the
    declaration order stops matching the geometry, which is what the
    declaration-order-robustness experiments exercise.
    """
    grid = cfg.grid
    if block_order is None:
        block_order = list(grid.blocks())
    else:
        if sorted(block_order) != sorted(grid.blocks()):
            raise ValidationError(
                "block_order must be a permutation of all grid blocks"
            )
    prog = Program(f"lk23-{cfg.n}x{cfg.n}-{grid.rows}x{grid.cols}")

    # Pass 1: declare all locations (they must exist before any handle).
    for r, c in block_order:
        tname = f"b{r}.{c}"
        for d in grid.neighbor_directions(r, c):
            nbytes = grid.frontier_bytes(d)
            # src: the intra-task hand-off.  The sub-op reads its frontier
            # out of the task's full block buffer, so its *affinity* to
            # main is the block footprint even though the exported payload
            # is just the frontier — this is what makes the extraction
            # cluster each task's 9 threads (paper: "we cluster threads
            # that share data").
            prog.location(
                f"{tname}/src/{d.name}",
                nbytes,
                owner_task=tname,
                affinity_bytes=grid.block_bytes,
            )
            prog.location(f"{tname}/out/{d.name}", nbytes, owner_task=tname)

    # Pass 2: declare tasks/operations and wire the handles.
    for r, c in block_order:
        tname = f"b{r}.{c}"
        task = prog.task(tname)
        dirs = grid.neighbor_directions(r, c)

        main = task.operation("main", body=None)
        halo_handles: list[Handle] = []
        for d in dirs:
            rr, cc = grid.neighbor(r, c, d)
            # Our halo in direction d is the neighbour's export toward us.
            loc = prog.locations[f"b{rr}.{cc}/out/{d.opposite.name}"]
            h = main.handle(loc, AccessMode.READ)
            h.init_phase = 2  # behind every initial export
            halo_handles.append(h)
        src_handles: list[Handle] = []
        for d in dirs:
            loc = prog.locations[f"{tname}/src/{d.name}"]
            h = main.handle(loc, AccessMode.WRITE)
            h.init_phase = 0  # the very first accesses: initial publication
            src_handles.append(h)
        main.body = _main_body(cfg, grid, halo_handles, src_handles)

        for d in dirs:
            sub = task.operation(f"sub_{d.name}", body=None)
            src_h = sub.handle(prog.locations[f"{tname}/src/{d.name}"], AccessMode.READ)
            out_h = sub.handle(prog.locations[f"{tname}/out/{d.name}"], AccessMode.WRITE)
            src_h.init_phase = 1  # behind main's initial publication
            out_h.init_phase = 1  # ahead of neighbours' halo imports
            sub.body = _sub_body(cfg, src_h, out_h)

    prog.validate()
    return prog


def describe(cfg: Lk23Config) -> str:
    """One-paragraph summary of a configuration (logs, EXPERIMENTS.md)."""
    g = cfg.grid
    interior = (g.rows - 2) * (g.cols - 2)
    return (
        f"LK23 {cfg.n}x{cfg.n} doubles, {g.rows}x{g.cols} blocks "
        f"(~{g.block_height:.0f}x{g.block_width:.0f} each, {g.block_bytes / 2**20:.2f} MiB), "
        f"{cfg.iterations} sweeps; {g.n_blocks} tasks, "
        f"up to {g.n_blocks * 9} operations ({interior} interior blocks with all "
        f"8 neighbours)"
    )
