"""Cluster extension (E2): topology-aware placement across machines.

ORWL was designed for iterative computing on clusters, and placement
matters *more* across a network than inside one box: a halo that lands
on the wrong side of a NIC costs microseconds instead of nanoseconds.
This experiment runs LK23 on the :func:`repro.topology.presets.cluster`
preset — a tree with one GROUP per compute node and network-class costs
at the root — comparing TreeMatch against bound-but-topology-blind
baselines (round-robin, random).  NoBind is excluded: an OS cannot
migrate a thread across machines, so the unbound model is meaningless
here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.comm.patterns import square_grid_shape
from repro.exec.cache import machine_inputs
from repro.kernels.lk23_orwl import Lk23Config, build_program
from repro.orwl.runtime import Runtime
from repro.placement.binder import bind_program
from repro.simulate.machine import Machine
from repro.stats.aggregate import SeedStats
from repro.stats.sweep import ReplicateSpec, run_replicated
from repro.topology.objects import ObjType

#: Policies compared across the cluster (all produce bound mappings).
CLUSTER_POLICIES = ("treematch", "round-robin", "random")


@dataclass
class ClusterPoint:
    """One policy's result on the cluster workload.

    ``time_stats`` is populated for multi-seed runs
    (:func:`run_cluster_lk23` with ``seeds > 1``): the aggregate of all
    replicate times, while the scalar fields stay replicate 0's (the
    base-seed run, identical to a single-seed sweep).
    """

    policy: str
    time: float
    network_bytes: float  #: bytes that crossed the inter-node network
    local_fraction: float
    time_stats: Optional[SeedStats] = None


def _cluster_policy_point(
    policy: str,
    nodes: int,
    sockets_per_node: int,
    cores_per_socket: int,
    n: int,
    iterations: int,
    seed: int,
    shuffle_declaration: bool,
) -> ClusterPoint:
    """One policy's cluster run; module-level for the sweep runner."""
    from repro.util.rng import make_rng

    topo, dm = machine_inputs(
        "cluster", nodes, sockets_per_node, cores_per_socket, costs="cluster"
    )
    n_tasks = topo.nb_pus
    rows, cols = square_grid_shape(n_tasks)
    cfg = Lk23Config(n=n, grid_rows=rows, grid_cols=cols, iterations=iterations)
    block_order = None
    if shuffle_declaration:
        rng = make_rng(seed)
        block_order = list(cfg.grid.blocks())
        rng.shuffle(block_order)
    prog = build_program(cfg, block_order=block_order)
    kwargs = {"seed": seed} if policy == "random" else {}
    # Distributed setting: threads cannot leave their node, so the
    # unmapped fallback is replaced by task co-location.
    plan = bind_program(
        prog, topo, policy=policy, control_fallback="colocate", **kwargs
    )
    machine = Machine(topo, distance_model=dm, seed=seed)
    result = Runtime(
        prog, machine, mapping=plan.mapping, control_mapping=plan.control_mapping
    ).run()
    network_bytes = float(
        result.metrics.bytes_by_level.get(ObjType.MACHINE, 0.0)
    )
    return ClusterPoint(
        policy=policy,
        time=result.time,
        network_bytes=network_bytes,
        local_fraction=result.metrics.local_fraction,
    )


def run_cluster_lk23(
    nodes: int = 4,
    sockets_per_node: int = 2,
    cores_per_socket: int = 8,
    n: int = 8192,
    iterations: int = 3,
    policies: tuple[str, ...] = CLUSTER_POLICIES,
    seed: int = 0,
    shuffle_declaration: bool = True,
    n_workers: int = 1,
    seeds: int = 1,
) -> dict[str, ClusterPoint]:
    """LK23 across a cluster under each policy; one task per core.

    With *shuffle_declaration* (the default) the blocks are declared in
    a seeded random order.  Blind policies place threads by declaration
    index, so a friendly row-major order makes them accidentally
    optimal for a stencil; shuffling models the common reality that
    task creation order does not follow data geometry, which is exactly
    the situation the affinity-aware mapping is for.

    Policies are independent runs; *n_workers* fans them out via
    :class:`repro.exec.SweepRunner` (1 = serial reference path, 0 =
    all host cores).  The returned dict is in *policies* order.

    With *seeds* > 1 each policy is replicated over derived seeds —
    which also re-shuffles the declaration order per replicate, so the
    spread captures declaration-order luck, the main noise source for
    the blind policies — and each returned point carries ``time_stats``.
    """
    sweep = run_replicated(
        [
            ReplicateSpec(
                _cluster_policy_point,
                dict(
                    policy=policy,
                    nodes=nodes,
                    sockets_per_node=sockets_per_node,
                    cores_per_socket=cores_per_socket,
                    n=n,
                    iterations=iterations,
                    shuffle_declaration=shuffle_declaration,
                ),
                key=(policy,),
                label=policy,
            )
            for policy in policies
        ],
        seeds=seeds,
        base_seed=seed,
        scope="cluster",
        value_of=_cluster_point_time,
        n_workers=n_workers,
    )
    out: dict[str, ClusterPoint] = {}
    for p in sweep.points:
        point = p.first
        if seeds > 1:
            point.time_stats = p.stats
        out[point.policy] = point
    return out


def _cluster_point_time(point: ClusterPoint) -> float:
    return point.time


def table(points: dict[str, ClusterPoint]) -> str:
    """Aligned text table of a cluster run.

    Multi-seed points (``time_stats`` set) get mean ± stddev and CI
    columns; single-seed tables are rendered exactly as before.
    """
    with_stats = any(p.time_stats is not None for p in points.values())
    header = f"{'policy':<14} {'time (ms)':>10} {'network MB':>12} {'NUMA-local':>11}"
    if with_stats:
        header += f" {'mean±sd (ms)':>18} {'95% CI (ms)':>20} {'n':>3}"
    lines = [header, "-" * len(header)]
    for name, p in points.items():
        line = (
            f"{name:<14} {p.time * 1000:>10.2f} {p.network_bytes / 1e6:>12.2f} "
            f"{p.local_fraction:>11.1%}"
        )
        if with_stats and p.time_stats is not None:
            s = p.time_stats
            line += (
                f" {f'{s.mean * 1000:.2f}±{s.stddev * 1000:.2f}':>18}"
                f" {f'[{s.ci_lo * 1000:.2f}, {s.ci_hi * 1000:.2f}]':>20}"
                f" {s.n:>3}"
            )
        lines.append(line)
    return "\n".join(lines)
