"""Span indexing: the shared substrate of every ``repro.perf`` analysis.

All of :mod:`repro.perf` consumes the same raw material — the span
events (:data:`repro.observe.tracer.SPAN_KINDS`) of one traced run.
:class:`TraceIndex` digests an event stream once into the views every
analysis needs (per-thread ordered spans, the global end-sorted order,
makespan, the time ledgers) so critical-path extraction, counter
groups, and traffic matrices never re-scan the stream themselves.

The index relies on two properties the tracer guarantees (and
:class:`repro.observe.invariants.InvariantChecker` audits):

* per thread, spans tile ``[0, done_at]`` exactly — a thread is always
  computing, transferring, lock-waiting, or run-queued;
* events are emitted in causal order: a span is emitted no later than
  any event it caused (``seq`` is a topological order of the run).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.observe.tracer import TraceEvent

#: Span kinds that represent *work* (occupying a PU making progress);
#: ``wait`` (parked on a lock) and ``runq`` (queued behind another
#: thread) are elapsed time but not work.
WORK_KINDS = frozenset({"compute", "transfer"})


def bucket_of(ev: TraceEvent) -> str:
    """The attribution bucket of a span: its kind, with transfers keyed
    by the sharing level the bytes crossed (``transfer:NUMANODE``)."""
    if ev.kind == "transfer" and ev.level:
        return f"transfer:{ev.level}"
    return ev.kind


@dataclass
class TraceIndex:
    """One traced run, digested for analysis.

    Attributes
    ----------
    spans:
        All span events in emission (= causal) order.
    by_thread:
        ``tid -> spans of that thread`` in program order; per-thread
        span starts are non-decreasing.
    makespan:
        Latest span end (0.0 for an empty stream) — the simulated
        processing time as witnessed by the trace.
    serial_time:
        Total span-seconds across all threads (busy + blocked); running
        the whole schedule on one PU could not beat it.
    work_time:
        Total compute + transfer seconds — the work the run performed.
    n_events:
        Size of the raw stream the index was built from.
    """

    spans: tuple[TraceEvent, ...] = ()
    by_thread: dict[int, list[TraceEvent]] = field(default_factory=dict)
    makespan: float = 0.0
    serial_time: float = 0.0
    work_time: float = 0.0
    n_events: int = 0
    #: spans sorted by ``(end, seq)`` (for releaser lookups).
    _by_end: list[TraceEvent] = field(default_factory=list, repr=False)
    _end_keys: list[float] = field(default_factory=list, repr=False)

    @classmethod
    def of(cls, events: Iterable[TraceEvent]) -> "TraceIndex":
        spans: list[TraceEvent] = []
        by_thread: dict[int, list[TraceEvent]] = {}
        makespan = 0.0
        serial = 0.0
        work = 0.0
        n_events = 0
        for ev in events:
            n_events += 1
            if not ev.is_span():
                continue
            spans.append(ev)
            by_thread.setdefault(ev.tid, []).append(ev)
            end = ev.end
            if end > makespan:
                makespan = end
            serial += ev.dur
            if ev.kind in WORK_KINDS:
                work += ev.dur
        by_end = sorted(spans, key=lambda e: (e.end, e.seq))
        return cls(
            spans=tuple(spans),
            by_thread=by_thread,
            makespan=makespan,
            serial_time=serial,
            work_time=work,
            n_events=n_events,
            _by_end=by_end,
            _end_keys=[e.end for e in by_end],
        )

    # -- lookups ------------------------------------------------------------

    def last_ending_before(
        self,
        t: float,
        exclude_tid: Optional[int] = None,
        require_dur: float = 0.0,
        prefer_work: bool = False,
        max_scan: int = 128,
    ) -> Optional[TraceEvent]:
        """The span with the greatest ``(end, seq)`` such that
        ``end <= t``, optionally excluding one thread, zero-duration
        spans, and (when *prefer_work*) preferring non-wait spans.

        Scans at most *max_scan* candidates leftward from the cut so a
        degenerate stream cannot turn one lookup quadratic; returns the
        best candidate seen (or ``None``).
        """
        i = bisect_right(self._end_keys, t) - 1
        fallback: Optional[TraceEvent] = None
        scanned = 0
        while i >= 0 and scanned < max_scan:
            ev = self._by_end[i]
            i -= 1
            scanned += 1
            if exclude_tid is not None and ev.tid == exclude_tid:
                continue
            if ev.dur <= require_dur:
                continue
            if prefer_work and ev.kind == "wait":
                if fallback is None:
                    fallback = ev
                continue
            return ev
        return fallback

    def span_covering(self, tid: int, t: float) -> Optional[TraceEvent]:
        """The latest span of *tid* starting strictly before *t*."""
        spans = self.by_thread.get(tid)
        if not spans:
            return None
        lo, hi = 0, len(spans)
        while lo < hi:
            mid = (lo + hi) // 2
            if spans[mid].ts < t:
                lo = mid + 1
            else:
                hi = mid
        return spans[lo - 1] if lo else None

    def last_finisher(self) -> Optional[TraceEvent]:
        """The span that ends last (ties broken by emission order)."""
        return self._by_end[-1] if self._by_end else None


def ensure_index(
    events_or_index: "TraceIndex | Sequence[TraceEvent]",
) -> TraceIndex:
    """Accept either a prebuilt index or a raw event sequence."""
    if isinstance(events_or_index, TraceIndex):
        return events_or_index
    return TraceIndex.of(events_or_index)
