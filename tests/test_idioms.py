"""Tests for the ORWL body idioms."""

import pytest

from repro.orwl import AccessMode, Program, Runtime, idioms
from repro.simulate.machine import Machine
from repro.treematch.mapping import Mapping
from repro.util.validate import ValidationError


def build_idiomatic_pingpong(iterations=4, nbytes=2048):
    """The ping-pong from test_orwl, rewritten with idioms."""
    prog = Program("idiom-pingpong")
    loc = prog.location("shared", nbytes=nbytes, owner_task="A")
    opA = prog.task("A").operation("main", body=None)
    hA = opA.handle(loc, AccessMode.WRITE)
    opA.body = lambda ctx: idioms.iterative(
        ctx, iterations, idioms.compute_sweep(seconds=1e-4),
        writes=[hA], publish_first=False,
    )
    opB = prog.task("B").operation("main", body=None)
    hB = opB.handle(loc, AccessMode.READ)
    opB.body = lambda ctx: idioms.iterative(
        ctx, iterations, idioms.compute_sweep(seconds=5e-5), reads=[hB]
    )
    return prog


class TestIterative:
    def test_pingpong_completes(self, small_topo):
        prog = build_idiomatic_pingpong()
        machine = Machine(small_topo, seed=0)
        res = Runtime(prog, machine, mapping=Mapping((0, 4))).run()
        assert res.time > 0
        # Reader pulled the payload every sweep.
        assert res.tracer.volume_between("A/main", "B/main") == 4 * 2048

    def test_invalid_iterations(self, small_topo):
        prog = Program("bad")
        loc = prog.location("l", 0, owner_task="t")
        op = prog.task("t").operation("main", body=None)
        h = op.handle(loc, AccessMode.WRITE)
        op.body = lambda ctx: idioms.iterative(
            ctx, 0, idioms.compute_sweep(seconds=1e-6), writes=[h]
        )
        machine = Machine(small_topo, seed=0)
        rt = Runtime(prog, machine, mapping=Mapping((0,)))
        with pytest.raises(ValidationError):
            rt.run()

    def test_publish_first_unblocks_reader_round_zero(self, small_topo):
        """With publish_first the reader's first import needs no compute
        from the writer: time stays near the reader's own work."""
        times = {}
        for publish in (True, False):
            prog = Program(f"pub-{publish}")
            loc = prog.location("l", 1024, owner_task="w")
            w = prog.task("w").operation("main", body=None)
            hw = w.handle(loc, AccessMode.WRITE)
            hw.init_phase = 0
            w.body = lambda ctx, hw=hw, p=publish: idioms.iterative(
                ctx, 2, idioms.compute_sweep(seconds=5e-3),
                writes=[hw], publish_first=p,
            )
            r = prog.task("r").operation("main", body=None)
            hr = r.handle(loc, AccessMode.READ)
            hr.init_phase = 1

            def reader(ctx, hr=hr):
                yield from ctx.acquire(hr)
                ctx.next(hr)

            r.body = reader
            machine = Machine(small_topo, seed=0)
            res = Runtime(prog, machine, mapping=Mapping((0, 1))).run()
            # Time until the reader's first import was granted is
            # reflected in total wait time.
            times[publish] = res.metrics.wait_time
        assert times[True] < times[False]

    def test_work_receives_sweep_index(self, small_topo):
        seen = []
        prog = Program("idx")
        loc = prog.location("l", 0, owner_task="t")
        op = prog.task("t").operation("main", body=None)
        h = op.handle(loc, AccessMode.WRITE)

        def work(ctx, k):
            seen.append(k)
            yield ctx.compute(seconds=1e-6)

        op.body = lambda ctx: idioms.iterative(ctx, 3, work, writes=[h])
        machine = Machine(small_topo, seed=0)
        Runtime(prog, machine, mapping=Mapping((0,))).run()
        assert seen == [0, 1, 2]

    def test_compute_sweep_validates_args(self, small_topo):
        prog = Program("args")
        loc = prog.location("l", 0, owner_task="t")
        op = prog.task("t").operation("main", body=None)
        op.handle(loc, AccessMode.WRITE)
        fn = idioms.compute_sweep()  # neither seconds nor flops

        def body(ctx):
            yield from fn(ctx, 0)

        op.body = body
        machine = Machine(small_topo, seed=0)
        rt = Runtime(prog, machine, mapping=Mapping((0,)))
        with pytest.raises(ValidationError):
            rt.run()
