"""Determinism fingerprints for simulation runs.

The whole experimental methodology rests on "same seed, same run": the
engine breaks ties by insertion order, every random draw flows from one
seed, and EXPERIMENTS.md compares runs that differ *only* in placement.
This module turns that promise into something a test can assert
bit-exactly:

* :func:`stream_hash` — sha-256 over a canonical binary encoding of the
  event stream (floats packed as IEEE-754 doubles, so two hashes are
  equal iff every timestamp, duration, and byte count is bit-identical);
* :func:`metrics_fingerprint` — the same for a
  :class:`~repro.simulate.metrics.MachineMetrics`;
* :func:`run_fingerprint` — both combined for a machine that ran with a
  tracer attached.
"""

from __future__ import annotations

import hashlib
import struct
from typing import TYPE_CHECKING, Iterable

from repro.observe.tracer import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulate.machine import Machine
    from repro.simulate.metrics import MachineMetrics

_DOUBLE = struct.Struct("<d")
_INT64 = struct.Struct("<q")


def _feed_str(h, s: str) -> None:
    b = s.encode("utf-8")
    h.update(_INT64.pack(len(b)))
    h.update(b)


def _feed_event(h, ev: TraceEvent) -> None:
    h.update(_INT64.pack(ev.seq))
    _feed_str(h, ev.kind)
    h.update(_DOUBLE.pack(ev.ts))
    h.update(_DOUBLE.pack(ev.dur))
    h.update(_INT64.pack(ev.tid))
    _feed_str(h, ev.thread)
    h.update(_INT64.pack(ev.pu))
    h.update(_INT64.pack(ev.node))
    _feed_str(h, ev.level)
    h.update(_DOUBLE.pack(ev.nbytes))
    _feed_str(h, ev.detail)


def stream_hash(events: Iterable[TraceEvent]) -> str:
    """Canonical sha-256 of an event stream (hex digest)."""
    h = hashlib.sha256()
    for ev in events:
        _feed_event(h, ev)
    return h.hexdigest()


def metrics_fingerprint(metrics: "MachineMetrics") -> str:
    """Canonical sha-256 of a run's aggregate counters (hex digest).

    Per-level dicts are folded in sorted level-name order so insertion
    order cannot leak into the fingerprint.
    """
    h = hashlib.sha256()
    for level in sorted(metrics.bytes_by_level, key=lambda lv: lv.name):
        _feed_str(h, level.name)
        h.update(_DOUBLE.pack(float(metrics.bytes_by_level[level])))
    for level in sorted(metrics.transfer_time_by_level, key=lambda lv: lv.name):
        _feed_str(h, level.name)
        h.update(_DOUBLE.pack(float(metrics.transfer_time_by_level[level])))
    for value in (
        metrics.compute_time,
        metrics.wait_time,
        metrics.runq_time,
        metrics.migration_penalty_time,
    ):
        h.update(_DOUBLE.pack(value))
    for count in (metrics.migrations, metrics.contended_transfers, metrics.transfers):
        h.update(_INT64.pack(count))
    return h.hexdigest()


def run_fingerprint(machine: "Machine") -> str:
    """Joint fingerprint of a traced machine run: final simulated time,
    event stream, and aggregate counters."""
    if machine.tracer is None:
        raise ValueError("run_fingerprint needs a traced run (tracer attached)")
    h = hashlib.sha256()
    h.update(_DOUBLE.pack(machine.engine.now))
    _feed_str(h, stream_hash(machine.tracer.events))
    _feed_str(h, metrics_fingerprint(machine.metrics))
    return h.hexdigest()
