"""Process-local metric registry: counters, gauges, histograms.

Design constraints (see docs/observability.md):

* **Near-zero cost when disabled.**  Instrumentation sites guard with
  :func:`is_enabled` (a module-flag read) before touching the registry,
  so a disabled run pays one attribute load + branch per site.
* **Deterministic.**  Histogram buckets come from
  :func:`exp_buckets`, computed by repeated IEEE-754 multiplication so
  the bounds are bit-identical on every platform/run.  The *stable*
  snapshot (``snapshot(stable_only=True)``) contains only
  integer-exact data — counter values with integral increments and
  histogram bucket counts — which merge exactly under any association
  order, so serial and parallel sweeps (and scalar vs batched engine
  modes) produce byte-identical stable snapshots.  Float accumulators
  (gauges, histogram ``sum``) are excluded from the stable view because
  float addition is not associative.
* **Fork/spawn friendly.**  Enablement rides the ``REPRO_METRICS``
  environment variable so pool workers inherit it; worker registries
  ship deltas back to the parent via :meth:`MetricRegistry.dump` /
  :func:`diff_dumps` / :meth:`MetricRegistry.merge` (the same pattern
  ``repro.exec.cache`` uses for cache stats).
"""

from __future__ import annotations

import json
import os
import re
import threading
from bisect import bisect_left
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.util.validate import ValidationError

__all__ = [
    "ENV_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
    "diff_dumps",
    "disable",
    "enable",
    "exp_buckets",
    "is_enabled",
    "metric_id",
    "registry",
    "reset_registry",
    "set_enabled",
    "LATENCY_BUCKETS",
    "SIM_TIME_BUCKETS",
    "SIZE_BUCKETS",
]

ENV_METRICS = "REPRO_METRICS"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_TRUTHY = frozenset({"1", "on", "true", "yes"})


def _env_enabled() -> bool:
    return os.environ.get(ENV_METRICS, "").strip().lower() in _TRUTHY


_ENABLED = _env_enabled()


def is_enabled() -> bool:
    """Cheap global check instrumentation sites use before recording."""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Flip metric collection on/off (also exports ``REPRO_METRICS``).

    The environment variable is kept in sync so process-pool workers —
    forked *or* spawned — inherit the setting.
    """
    global _ENABLED
    _ENABLED = bool(flag)
    if flag:
        os.environ[ENV_METRICS] = "on"
    else:
        os.environ.pop(ENV_METRICS, None)


def enable() -> None:
    set_enabled(True)


def disable() -> None:
    set_enabled(False)


def exp_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """Deterministic exponential bucket bounds.

    Computed by repeated multiplication (not ``start * factor**i``) so
    every consumer gets bit-identical IEEE-754 bounds regardless of the
    libm in play.
    """
    if not (start > 0.0):
        raise ValidationError(f"exp_buckets start must be > 0, got {start!r}")
    if not (factor > 1.0):
        raise ValidationError(f"exp_buckets factor must be > 1, got {factor!r}")
    if count < 1:
        raise ValidationError(f"exp_buckets count must be >= 1, got {count!r}")
    bounds = []
    cur = float(start)
    for _ in range(count):
        bounds.append(cur)
        cur *= factor
    return tuple(bounds)


# 1 µs .. ~33 s — wall-clock latencies (service queries, chunk walls).
LATENCY_BUCKETS = exp_buckets(1e-6, 2.0, 26)
# 1 ns .. ~1100 s — simulated durations (ORWL waits, transfers).
SIM_TIME_BUCKETS = exp_buckets(1e-9, 2.0, 41)
# 1 .. ~5.4e8 — counts/bytes (cohort sizes, transfer sizes).
SIZE_BUCKETS = exp_buckets(1.0, 2.0, 30)


def metric_id(name: str, labels: Mapping[str, str] | None = None) -> str:
    """Canonical registry key: ``name`` or ``name{k="v",...}`` (sorted)."""
    if labels:
        inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
        return f"{name}{{{inner}}}"
    return name


def _check_name(name: str) -> None:
    if not _NAME_RE.match(name):
        raise ValidationError(f"invalid metric name {name!r}")


def _check_labels(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    out = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValidationError(f"invalid label name {key!r}")
        out.append((key, str(labels[key])))
    return tuple(out)


class Metric:
    """Base: identity, help text, and the stable-snapshot flag."""

    kind = "untyped"
    __slots__ = ("name", "labels", "help", "stable")

    def __init__(
        self,
        name: str,
        *,
        labels: Mapping[str, str] | None = None,
        help: str = "",
        stable: bool = True,
    ) -> None:
        _check_name(name)
        self.name = name
        self.labels: tuple[tuple[str, str], ...] = _check_labels(labels or {})
        self.help = help
        self.stable = stable

    @property
    def id(self) -> str:
        return metric_id(self.name, dict(self.labels))

    def sample(self) -> dict[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Metric):
    """Monotonically non-decreasing value.

    Increments are validated non-negative; integral increments keep the
    counter integer-exact, which is what makes it eligible for the
    stable snapshot.
    """

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, **kw: Any) -> None:
        super().__init__(name, **kw)
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValidationError(
                f"counter {self.name}: negative increment {amount!r}"
            )
        self.value += amount

    def set_to_max(self, value: int | float) -> None:
        """Monotonic absolute sync (for mirroring external counters)."""
        if value > self.value:
            self.value = value

    def sample(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge(Metric):
    """Point-in-time value.  Never part of the stable snapshot."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, **kw: Any) -> None:
        kw.setdefault("stable", False)
        if kw["stable"]:
            raise ValidationError(f"gauge {name}: gauges cannot be stable")
        super().__init__(name, **kw)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def sample(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram(Metric):
    """Fixed-bound histogram with deterministic exponential buckets.

    ``counts`` has ``len(bounds) + 1`` slots; the last is the +Inf
    overflow bucket.  Bucket counts and ``count`` are integers and
    merge exactly; ``sum`` is a float accumulator and is excluded from
    the stable snapshot.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(
        self,
        name: str,
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        **kw: Any,
    ) -> None:
        super().__init__(name, **kw)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValidationError(f"histogram {name}: empty bucket list")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValidationError(
                f"histogram {name}: bucket bounds must strictly increase"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Upper bucket bound holding the q-quantile (0 if empty).

        A bucket-resolution estimate: precise enough for SLO lines
        (p50/p95/p99) given exponential bounds.
        """
        if not (0.0 <= q <= 1.0):
            raise ValidationError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                if i < len(self.bounds):
                    return self.bounds[i]
                return float("inf")
        return float("inf")

    def sample(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricRegistry:
    """Get-or-create metric store keyed by :func:`metric_id`.

    Thread-safe for metric *creation*; recording on an existing metric
    is a plain attribute update (fine under the GIL for our int/float
    bumps, and the stable snapshot only ever contains exact integers).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    # -- creation -------------------------------------------------------
    def _get_or_create(
        self, cls: type, name: str, kw: dict[str, Any]
    ) -> Any:
        key = metric_id(name, kw.get("labels") or {})
        metric = self._metrics.get(key)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValidationError(
                    f"metric {key!r} already registered as {metric.kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, **kw)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ValidationError(
                    f"metric {key!r} already registered as {metric.kind}"
                )
            return metric

    def counter(
        self,
        name: str,
        help: str = "",
        *,
        labels: Mapping[str, str] | None = None,
        stable: bool = True,
    ) -> Counter:
        return self._get_or_create(
            Counter, name, {"help": help, "labels": labels, "stable": stable}
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        *,
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        return self._get_or_create(
            Gauge, name, {"help": help, "labels": labels}
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        stable: bool = True,
    ) -> Histogram:
        return self._get_or_create(
            Histogram,
            name,
            {"help": help, "labels": labels, "stable": stable, "buckets": buckets},
        )

    # -- access ---------------------------------------------------------
    def get(self, name: str, labels: Mapping[str, str] | None = None) -> Metric | None:
        return self._metrics.get(metric_id(name, labels))

    def __iter__(self) -> Iterator[Metric]:
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def __len__(self) -> int:
        return len(self._metrics)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- snapshots ------------------------------------------------------
    def snapshot(self, *, stable_only: bool = False) -> dict[str, Any]:
        """Samples keyed by metric id.

        ``stable_only`` keeps only integer-exact data: counters and
        histogram bucket counts from metrics flagged ``stable``; the
        histogram float ``sum`` and all gauges are dropped.  Metrics
        with zero activity are dropped too — worker deltas omit
        untouched metrics, so a zero-valued counter would exist in a
        serial run's registry but not a parallel one's.  This is the
        view the determinism acceptance test byte-compares.
        """
        out: dict[str, Any] = {}
        for metric in self:
            if stable_only:
                if not metric.stable or isinstance(metric, Gauge):
                    continue
                if isinstance(metric, Counter) and metric.value == 0:
                    continue
                if isinstance(metric, Histogram) and metric.count == 0:
                    continue
                sample = metric.sample()
                sample.pop("sum", None)
                out[metric.id] = sample
            else:
                out[metric.id] = metric.sample()
        return {"schema": "repro-metrics-v1", "metrics": out}

    def to_json(self, *, stable_only: bool = False) -> str:
        """Canonical-JSON snapshot (sorted keys, no whitespace)."""
        return json.dumps(
            self.snapshot(stable_only=stable_only),
            sort_keys=True,
            separators=(",", ":"),
        )

    # -- worker delta shipping ------------------------------------------
    def dump(self) -> dict[str, Any]:
        """Full state + metadata, sufficient to recreate every metric."""
        out: dict[str, Any] = {}
        for metric in self:
            entry: dict[str, Any] = {
                "type": metric.kind,
                "name": metric.name,
                "labels": [list(kv) for kv in metric.labels],
                "help": metric.help,
                "stable": metric.stable,
            }
            if isinstance(metric, Histogram):
                entry["bounds"] = list(metric.bounds)
                entry["counts"] = list(metric.counts)
                entry["count"] = metric.count
                entry["sum"] = metric.sum
            else:
                entry["value"] = metric.value  # type: ignore[union-attr]
            out[metric.id] = entry
        return out

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Fold a :func:`diff_dumps` delta (e.g. from a pool worker) in.

        Counters and histogram counts add; gauges take the delta's
        absolute value (last write wins).
        """
        for key, entry in sorted(delta.items()):
            kind = entry["type"]
            labels = {k: v for k, v in entry.get("labels", [])}
            kw = {"labels": labels, "help": entry.get("help", "")}
            if kind == "counter":
                metric = self.counter(
                    entry["name"], stable=entry.get("stable", True), **kw
                )
                metric.inc(entry["value"])
            elif kind == "gauge":
                metric = self.gauge(entry["name"], **kw)
                metric.set(entry["value"])
            elif kind == "histogram":
                hist = self.histogram(
                    entry["name"],
                    buckets=entry["bounds"],
                    stable=entry.get("stable", True),
                    **kw,
                )
                if list(hist.bounds) != [float(b) for b in entry["bounds"]]:
                    raise ValidationError(
                        f"histogram {key!r}: bucket bounds mismatch on merge"
                    )
                for i, n in enumerate(entry["counts"]):
                    hist.counts[i] += n
                hist.count += entry["count"]
                hist.sum += entry["sum"]
            else:
                raise ValidationError(f"unknown metric type {kind!r} in delta")


def diff_dumps(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> dict[str, Any]:
    """Delta between two :meth:`MetricRegistry.dump` snapshots.

    Metrics absent from ``before`` contribute their full value.  Empty
    deltas (nothing changed) are omitted so cross-process payloads stay
    small.
    """
    out: dict[str, Any] = {}
    for key, entry in after.items():
        prev = before.get(key)
        kind = entry["type"]
        if kind == "counter":
            dv = entry["value"] - (prev["value"] if prev else 0)
            if dv:
                out[key] = {**entry, "value": dv}
        elif kind == "gauge":
            if prev is None or prev["value"] != entry["value"]:
                out[key] = dict(entry)
        elif kind == "histogram":
            base_counts = prev["counts"] if prev else [0] * len(entry["counts"])
            d_counts = [a - b for a, b in zip(entry["counts"], base_counts)]
            if any(d_counts):
                out[key] = {
                    **entry,
                    "counts": d_counts,
                    "count": entry["count"] - (prev["count"] if prev else 0),
                    "sum": entry["sum"] - (prev["sum"] if prev else 0.0),
                }
        else:
            raise ValidationError(f"unknown metric type {kind!r} in dump")
    return out


_REGISTRY: MetricRegistry | None = None
_REGISTRY_LOCK = threading.Lock()


def registry() -> MetricRegistry:
    """The process-global registry (created lazily)."""
    global _REGISTRY
    if _REGISTRY is None:
        with _REGISTRY_LOCK:
            if _REGISTRY is None:
                _REGISTRY = MetricRegistry()
    return _REGISTRY


def reset_registry() -> MetricRegistry:
    """Drop all recorded metrics; returns the fresh registry."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        _REGISTRY = MetricRegistry()
    return _REGISTRY


Probe = Callable[[Any], None]
