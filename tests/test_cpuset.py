"""Tests for repro.topology.cpuset: bitmap semantics and parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.cpuset import CpuSet, EMPTY


class TestConstruction:
    def test_empty(self):
        cs = CpuSet()
        assert cs.is_empty()
        assert len(cs) == 0
        assert not cs

    def test_from_indices(self):
        cs = CpuSet([0, 3, 5])
        assert list(cs) == [0, 3, 5]
        assert len(cs) == 3

    def test_duplicate_indices_collapse(self):
        assert CpuSet([1, 1, 1]) == CpuSet([1])

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            CpuSet([-1])

    def test_from_mask(self):
        assert list(CpuSet.from_mask(0b1011)) == [0, 1, 3]

    def test_from_mask_negative_rejected(self):
        with pytest.raises(ValueError):
            CpuSet.from_mask(-1)

    def test_from_range(self):
        assert list(CpuSet.from_range(2, 6)) == [2, 3, 4, 5]

    def test_from_range_empty(self):
        assert CpuSet.from_range(3, 3).is_empty()

    def test_from_range_invalid(self):
        with pytest.raises(ValueError):
            CpuSet.from_range(5, 2)

    def test_singleton(self):
        cs = CpuSet.singleton(7)
        assert list(cs) == [7]

    def test_singleton_negative_rejected(self):
        with pytest.raises(ValueError):
            CpuSet.singleton(-2)


class TestParse:
    def test_parse_single(self):
        assert list(CpuSet.parse("5")) == [5]

    def test_parse_range(self):
        assert list(CpuSet.parse("0-3")) == [0, 1, 2, 3]

    def test_parse_mixed(self):
        assert list(CpuSet.parse("0-2,5,8-9")) == [0, 1, 2, 5, 8, 9]

    def test_parse_empty(self):
        assert CpuSet.parse("").is_empty()
        assert CpuSet.parse("  ").is_empty()

    def test_parse_descending_range_rejected(self):
        with pytest.raises(ValueError):
            CpuSet.parse("5-2")

    def test_parse_roundtrip(self):
        cs = CpuSet([0, 1, 2, 5, 8, 9, 100])
        assert CpuSet.parse(cs.to_list_string()) == cs


class TestQueries:
    def test_first_last(self):
        cs = CpuSet([3, 9, 17])
        assert cs.first() == 3
        assert cs.last() == 17

    def test_first_empty_raises(self):
        with pytest.raises(ValueError):
            EMPTY.first()

    def test_last_empty_raises(self):
        with pytest.raises(ValueError):
            EMPTY.last()

    def test_next_set(self):
        cs = CpuSet([1, 4, 8])
        assert cs.next_set(0) == 1
        assert cs.next_set(1) == 4
        assert cs.next_set(4) == 8
        assert cs.next_set(8) is None

    def test_next_set_negative_prev(self):
        assert CpuSet([0, 2]).next_set(-1) == 0

    def test_weight(self):
        assert CpuSet.from_range(0, 192).weight() == 192

    def test_contains(self):
        cs = CpuSet([2, 4])
        assert 2 in cs and 4 in cs
        assert 3 not in cs
        assert -1 not in cs

    def test_singlify(self):
        assert CpuSet([5, 9]).singlify() == CpuSet([5])

    def test_singlify_empty(self):
        assert EMPTY.singlify() == EMPTY

    def test_subset_relations(self):
        a = CpuSet([1, 2])
        b = CpuSet([1, 2, 3])
        assert a.issubset(b)
        assert b.issuperset(a)
        assert not b.issubset(a)

    def test_disjoint(self):
        assert CpuSet([0, 1]).isdisjoint(CpuSet([2, 3]))
        assert not CpuSet([0, 1]).isdisjoint(CpuSet([1, 2]))


class TestAlgebra:
    def test_union(self):
        assert CpuSet([0, 1]) | CpuSet([1, 2]) == CpuSet([0, 1, 2])

    def test_intersection(self):
        assert CpuSet([0, 1, 2]) & CpuSet([1, 2, 3]) == CpuSet([1, 2])

    def test_difference(self):
        assert CpuSet([0, 1, 2]) - CpuSet([1]) == CpuSet([0, 2])

    def test_symmetric_difference(self):
        assert CpuSet([0, 1]) ^ CpuSet([1, 2]) == CpuSet([0, 2])

    def test_hashable(self):
        assert len({CpuSet([1]), CpuSet([1]), CpuSet([2])}) == 2

    def test_eq_other_type(self):
        assert CpuSet([1]) != "1"


class TestFormatting:
    def test_to_list_string_runs(self):
        assert CpuSet([0, 1, 2, 5, 7, 8]).to_list_string() == "0-2,5,7-8"

    def test_to_list_string_empty(self):
        assert EMPTY.to_list_string() == ""

    def test_to_hex(self):
        assert CpuSet([0, 1, 2, 3]).to_hex() == "0x0000000f"

    def test_repr(self):
        assert "0-2" in repr(CpuSet([0, 1, 2]))


# -- property-based ---------------------------------------------------------

idx_sets = st.sets(st.integers(min_value=0, max_value=300), max_size=40)


@given(idx_sets, idx_sets)
def test_union_weight_inclusion_exclusion(a, b):
    ca, cb = CpuSet(a), CpuSet(b)
    assert (ca | cb).weight() == len(a | b)
    assert (ca & cb).weight() == len(a & b)


@given(idx_sets)
def test_iteration_matches_membership(a):
    cs = CpuSet(a)
    assert set(cs) == a
    assert all(i in cs for i in a)


@given(idx_sets)
def test_list_string_roundtrip(a):
    cs = CpuSet(a)
    assert CpuSet.parse(cs.to_list_string()) == cs


@given(idx_sets, idx_sets)
def test_difference_disjoint_from_subtrahend(a, b):
    assert (CpuSet(a) - CpuSet(b)).isdisjoint(CpuSet(b))
