"""``GroupProcesses``: partition entities into fixed-size affinity groups.

Algorithm 1 line 6 — at each tree level, the current entities must be
split into ``k`` groups of size ``a`` (the level's arity) so that the
communication volume *inside* groups is maximized (equivalently, the
inter-group cut is minimized).  Optimal fixed-size partitioning is
NP-hard, so like TreeMatch we use an exact search only for small orders
and a greedy-plus-refinement heuristic beyond that.

The public entry point is :func:`group_processes`; the strategies are
exposed individually for the ablation benchmarks.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.util.validate import ValidationError, check_square_matrix

#: Orders up to this run the exact branch-and-bound partitioner.
EXACT_THRESHOLD = 12

#: Orders above this skip the (quadratic-in-groups) swap refinement.
REFINE_THRESHOLD = 512


def intra_group_volume(m: np.ndarray, groups: Sequence[Sequence[int]]) -> float:
    """Total communication volume kept inside groups (each pair once)."""
    total = 0.0
    for g in groups:
        idx = np.asarray(list(g), dtype=np.intp)
        total += float(m[np.ix_(idx, idx)].sum()) / 2.0
    return total


def cut_volume(m: np.ndarray, groups: Sequence[Sequence[int]]) -> float:
    """Volume crossing group boundaries (complement of intra volume)."""
    return float(m.sum()) / 2.0 - intra_group_volume(m, groups)


def _validate(m: np.ndarray, group_size: int) -> np.ndarray:
    a = check_square_matrix(m, "affinity matrix")
    n = a.shape[0]
    if group_size <= 0:
        raise ValidationError(f"group_size must be > 0, got {group_size}")
    if n % group_size != 0:
        raise ValidationError(
            f"order {n} is not divisible by group size {group_size}; "
            "pad the matrix with virtual entities first"
        )
    return a


# ---------------------------------------------------------------------------
# Exact partitioner (small orders)
# ---------------------------------------------------------------------------


def group_exact(m: np.ndarray, group_size: int) -> list[list[int]]:
    """Optimal fixed-size grouping by canonical-order exhaustive search.

    Enumerates set partitions into blocks of exactly *group_size*,
    canonicalized by always placing the lowest unassigned entity first
    (eliminating group-order and in-group-order symmetry).  Exponential;
    guarded by :data:`EXACT_THRESHOLD` in :func:`group_processes`.

    The candidate-group scoring is vectorized: at each search node, the
    intra-group gain and the optimistic completion bound of *every*
    candidate group are computed in a handful of numpy operations over
    the whole candidate batch, instead of a Python loop over
    ``itertools.combinations`` pairs per candidate.  The per-candidate
    gains accumulate in the same pair order as the scalar code did, so
    leaf values — and therefore the selected optimum — are bit-identical
    to the historical implementation; the fast bound carries a slack
    margin well above float drift so pruning stays admissible.
    """
    m = _validate(m, group_size)
    n = m.shape[0]
    if group_size == n:
        return [list(range(n))]
    best_groups: list[list[int]] | None = None
    best_value = -1.0
    a = group_size
    # Pruning slack: the vectorized bound is algebraically identical to
    # the exhaustive complement sum but accumulates in a different
    # order, so it may drift by ~n²·eps·max|m|.  Pruning only when the
    # optimistic total trails the incumbent by more than this slack
    # keeps the bound admissible (never cuts a branch the exact bound
    # would have kept).
    slack = 1e-9 * max(1.0, float(np.abs(m).sum()))

    def search(remaining: frozenset[int], acc: list[list[int]], value: float) -> None:
        nonlocal best_groups, best_value
        if not remaining:
            if value > best_value:
                best_value = value
                best_groups = [list(g) for g in acc]
            return
        rest_sorted = sorted(remaining)
        first = rest_sorted[0]
        combos = np.array(
            list(itertools.combinations(rest_sorted[1:], a - 1)), dtype=np.intp
        ).reshape(-1, a - 1)
        k = combos.shape[0]
        groups = np.empty((k, a), dtype=np.intp)
        groups[:, 0] = first
        groups[:, 1:] = combos
        # Intra-group gain of every candidate, pair by pair (columns),
        # vectorized across the candidate batch.
        gain = np.zeros(k, dtype=np.float64)
        for i in range(a):
            col_i = groups[:, i]
            for j in range(i + 1, a):
                gain += m[col_i, groups[:, j]]
        # Optimistic bound: all remaining volume stays intra.  With
        # R = remaining and g a candidate,
        #   vol(R \ g) = vol(R) - sum_{x in g} rowsum_R(x) + vol(g).
        R = np.asarray(rest_sorted, dtype=np.intp)
        vol_R = float(m[np.ix_(R, R)].sum()) / 2.0
        rowsum_R = m[:, R].sum(axis=1)
        bound = vol_R - rowsum_R[groups].sum(axis=1) + gain
        optimistic = value + gain + bound + slack
        for idx in range(k):
            if optimistic[idx] <= best_value:
                continue
            group = [int(x) for x in groups[idx]]
            acc.append(group)
            search(remaining.difference(group), acc, value + float(gain[idx]))
            acc.pop()

    search(frozenset(range(n)), [], 0.0)
    assert best_groups is not None
    return best_groups


# ---------------------------------------------------------------------------
# Greedy partitioner (large orders)
# ---------------------------------------------------------------------------


def group_greedy(m: np.ndarray, group_size: int) -> list[list[int]]:
    """Greedy agglomerative grouping (vectorized).

    Repeatedly seed a group with the heaviest-communicating unassigned
    entity, then grow it by adding the unassigned entity with the largest
    total volume toward the group, until the group is full.  The
    group-attachment scores are maintained incrementally
    (``scores += m[new_member]``), making the whole pass O(n²) numpy
    work — fast enough for the 1000+-thread programs of the paper's
    oversubscribed configurations.
    """
    m = _validate(m, group_size)
    n = m.shape[0]
    available = np.ones(n, dtype=bool)
    groups: list[list[int]] = []
    row_volumes = m.sum(axis=1)
    neg_inf = -np.inf
    while available.any():
        seed_scores = np.where(available, row_volumes, neg_inf)
        seed = int(seed_scores.argmax())
        group = [seed]
        available[seed] = False
        scores = m[seed].copy()
        while len(group) < group_size:
            cand = np.where(available, scores, neg_inf)
            best = int(cand.argmax())
            group.append(best)
            available[best] = False
            scores += m[best]
        groups.append(sorted(group))
    return groups


def refine_swap(
    m: np.ndarray, groups: list[list[int]], max_rounds: int = 4
) -> list[list[int]]:
    """Kernighan–Lin-style pairwise-swap refinement.

    Repeatedly swaps one member between two groups when that increases
    the intra-group volume; stops at a local optimum or after
    *max_rounds* sweeps over all group pairs.

    A pair whose two groups are both unchanged since it was last scored
    is skipped: rescoring it would rebuild the identical gain matrix
    and reach the identical no-swap verdict (had a swap been
    profitable, it would already have been applied, changing a group
    version).  Skipping is therefore bit-identical to the exhaustive
    sweep — the property tests in ``tests/test_grouping.py`` pin the
    output against the unskipped reference — while later rounds over
    mostly-settled groups cost almost nothing.
    """
    m = check_square_matrix(m, "affinity matrix")
    groups = [list(g) for g in groups]
    version = [0] * len(groups)
    seen: dict[tuple[int, int], tuple[int, int]] = {}

    for _ in range(max_rounds):
        improved = False
        for ga in range(len(groups)):
            for gb in range(ga + 1, len(groups)):
                state = (version[ga], version[gb])
                if seen.get((ga, gb)) == state:
                    continue
                seen[ga, gb] = state
                A, B = groups[ga], groups[gb]
                # Vectorized swap scoring: attachment of every member to
                # its own and to the other group in four axis-sums, then
                # the full |A| × |B| swap-gain matrix at once (the
                # scalar version recomputed attachments inside a
                # quadruple loop).  ``- 2 m[a, b]`` corrects for the
                # a-b edge, which stays cut after the swap.
                mAA = m[np.ix_(A, A)]
                mBB = m[np.ix_(B, B)]
                mAB = m[np.ix_(A, B)]
                mBA = m[np.ix_(B, A)]
                a_in_A = mAA.sum(axis=0) - np.diag(mAA)
                b_in_B = mBB.sum(axis=0) - np.diag(mBB)
                a_in_B = mBA.sum(axis=0)
                b_in_A = mAB.sum(axis=0)
                gain = (
                    (a_in_B[:, None] + b_in_A[None, :])
                    - (a_in_A[:, None] + b_in_B[None, :])
                    - 2.0 * mAB
                )
                flat = int(np.argmax(gain))  # first maximum in (ia, ib) order
                ia, ib = divmod(flat, len(B))
                if gain[ia, ib] > 1e-12:
                    A[ia], B[ib] = B[ib], A[ia]
                    version[ga] += 1
                    version[gb] += 1
                    improved = True
        if not improved:
            break
    return [sorted(g) for g in groups]


def group_processes(
    m: np.ndarray,
    group_size: int,
    strategy: str = "auto",
    refine: bool = True,
) -> list[list[int]]:
    """The ``GroupProcesses`` function of Algorithm 1.

    Parameters
    ----------
    m:
        Symmetric affinity matrix over the current entities.
    group_size:
        The arity ``a`` of the tree level being processed; the order of
        *m* must be a multiple of it.
    strategy:
        ``"exact"``, ``"greedy"``, ``"bisection"`` (recursive
        Kernighan–Lin, see :mod:`repro.treematch.bisection`), or
        ``"auto"`` (exact below :data:`EXACT_THRESHOLD`, greedy above).
    refine:
        Run swap refinement after the greedy pass (ignored for exact).

    Returns
    -------
    list of groups, each a sorted list of entity indices; groups are in
    the order they will occupy sibling subtrees.
    """
    m = _validate(m, group_size)
    n = m.shape[0]
    if group_size == 1:
        return [[i] for i in range(n)]
    if group_size == n:
        return [list(range(n))]
    if strategy == "auto":
        strategy = "exact" if n <= EXACT_THRESHOLD else "greedy"
    if strategy == "bisection":
        from repro.treematch.bisection import group_bisection

        return group_bisection(m, group_size)
    if strategy == "exact":
        return group_exact(m, group_size)
    if strategy == "greedy":
        groups = group_greedy(m, group_size)
        # Swap refinement is O(k² · a² · n); worth it for the orders the
        # launch-time mapping sees, skipped for very large matrices where
        # the greedy pass alone is already the practical choice.
        if refine and n <= REFINE_THRESHOLD:
            groups = refine_swap(m, groups)
        return groups
    raise ValidationError(f"unknown grouping strategy {strategy!r}")
