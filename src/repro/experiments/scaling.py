"""Scaling study: where does the placement advantage saturate?

The paper's Figure 1 stops at the 24-socket × 8-core SMP.  This
experiment keeps the *per-core* workload fixed (weak scaling: every
core owns the same number of matrix cells as in the paper's best
configuration) and grows the machine through the generated presets of
:mod:`repro.topology.generate` — 48, 96, 256 sockets, and a 512-socket
two-tier cluster-of-clusters — running all three implementations at
every size.

Deeper machines mean more of the communication lands on expensive
levels, which is exactly where topology-aware placement pays off — and
also where it must eventually saturate, once ORWL-Bind's halo traffic
is as local as the topology permits while the blind placements degrade
no further.  :meth:`ScalingResult.saturation` finds that knee.

Statistics are the powered-up matched-seed layer: every implementation
runs the *same* seed schedule at each size, so the per-size comparisons
are **paired** (sign-flip permutation tests on per-seed differences),
Cliff's delta reports the effect size next to each p-value, and
Holm–Bonferroni corrects the family of tests across the swept sizes —
one blind 5 %-level test per size would otherwise hand the sweep a
free false positive by sheer multiplicity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.comm.patterns import square_grid_shape
from repro.exec.cache import machine_inputs
from repro.exec.runner import SweepRunner
from repro.experiments.fig1 import IMPLEMENTATIONS
from repro.kernels.lk23_orwl import Lk23Config, build_program
from repro.kernels.openmp import OpenMpConfig, run_openmp_lk23
from repro.orwl.runtime import Runtime
from repro.placement.binder import bind_program
from repro.simulate.machine import Machine
from repro.stats.aggregate import SeedStats
from repro.stats.significance import PairedVerdict, compare_paired, correct_verdicts
from repro.stats.sweep import ReplicateSpec, run_replicated
from repro.topology.generate import scaling_sizes
from repro.util.validate import ValidationError

#: The paper's best configuration, per core: 16384² cells on 192 cores.
CELLS_PER_CORE = 16384**2 // 192

#: Default machine sizes of the sweep (ascending PU count).
DEFAULT_PRESETS = ("paper", "smp48x8", "smp96x8", "smp256x8", "smp512x8")


@dataclass
class ScalingPoint:
    """One (preset, implementation) measurement."""

    preset: str
    implementation: str
    n_cores: int
    n: int
    time: float
    local_fraction: float
    migrations: int
    remote_bytes: float
    #: JSON dict of the point's :class:`repro.perf.PerfReport` (``None``
    #: unless run with ``perf_report=True``); a plain dict so the point
    #: pickles across sweep workers.
    perf: Optional[dict] = None


def matrix_order(n_cores: int, cells_per_core: int = CELLS_PER_CORE) -> int:
    """The weak-scaling matrix order: ``isqrt(cores × cells-per-core)``.

    Fixed per-core work — at 192 cores this reproduces the paper's
    16384² configuration (to integer rounding).
    """
    if n_cores <= 0:
        raise ValidationError(f"n_cores must be > 0, got {n_cores}")
    if cells_per_core <= 0:
        raise ValidationError(f"cells_per_core must be > 0, got {cells_per_core}")
    return math.isqrt(n_cores * cells_per_core)


def run_scaling_point(
    preset: str,
    implementation: str,
    iterations: int = 3,
    cells_per_core: int = CELLS_PER_CORE,
    seed: int = 0,
    perf_report: bool = False,
) -> ScalingPoint:
    """Run one implementation on one generated machine; returns the point.

    The machine comes from the per-process construction cache (the
    generated presets are registered in
    :data:`repro.topology.presets.PRESETS`), one ORWL task / OpenMP
    worker per core, matrix order fixed per-core by *cells_per_core*.
    With *perf_report*, the run is traced and the point carries the
    JSON form of its :func:`repro.perf.analyze` report in ``perf``.
    """
    if implementation not in IMPLEMENTATIONS:
        raise ValidationError(
            f"unknown implementation {implementation!r}; one of {IMPLEMENTATIONS}"
        )
    topo, dm = machine_inputs(preset)
    n_cores = topo.nb_pus
    n = matrix_order(n_cores, cells_per_core)
    tracer = None
    if perf_report:
        from repro.observe.tracer import Tracer

        tracer = Tracer()
    machine = Machine(topo, distance_model=dm, seed=seed, tracer=tracer)

    if implementation == "openmp":
        result = run_openmp_lk23(
            machine, OpenMpConfig(n=n, n_threads=n_cores, iterations=iterations)
        )
        metrics = result.metrics
        time = result.time
    else:
        rows, cols = square_grid_shape(n_cores)
        cfg = Lk23Config(n=n, grid_rows=rows, grid_cols=cols, iterations=iterations)
        prog = build_program(cfg)
        policy = "treematch" if implementation == "orwl-bind" else "nobind"
        plan = bind_program(prog, topo, policy=policy)
        runtime = Runtime(
            prog, machine, mapping=plan.mapping, control_mapping=plan.control_mapping
        )
        run = runtime.run()
        metrics = run.metrics
        time = run.time

    perf = None
    if perf_report:
        from repro.perf import analyze
        from repro.topology.objects import ObjType

        perf = analyze(
            tracer.events,
            label=f"{implementation}@{preset}",
            measured_time=time,
            n_pus=topo.nb_pus,
            n_nodes=topo.nbobjs_by_type(ObjType.NUMANODE),
        ).to_json_dict()

    return ScalingPoint(
        preset=preset,
        implementation=implementation,
        n_cores=n_cores,
        n=n,
        time=time,
        local_fraction=metrics.local_fraction,
        migrations=metrics.migrations,
        remote_bytes=metrics.remote_bytes,
        perf=perf,
    )


def _point_time(point: ScalingPoint) -> float:
    return point.time


@dataclass
class ScalingResult:
    """All points of a machine-size sweep plus the paired statistics.

    ``points`` holds replicate 0 of every point (the base-seed run);
    ``replicates`` all N runs per ``(preset, implementation)`` in
    replicate order — order matters, it *is* the seed pairing — and
    ``seed_stats`` the per-point time aggregates.
    """

    presets: list[str] = field(default_factory=list)
    #: preset -> core count, in sweep (ascending-size) order.
    sizes: dict[str, int] = field(default_factory=dict)
    iterations: int = 0
    cells_per_core: int = CELLS_PER_CORE
    n_seeds: int = 1
    alpha: float = 0.05
    points: list[ScalingPoint] = field(default_factory=list)
    seed_stats: dict[tuple[str, str], SeedStats] = field(default_factory=dict)
    replicates: dict[tuple[str, str], tuple[ScalingPoint, ...]] = field(
        default_factory=dict
    )

    # -- lookups -----------------------------------------------------------

    def _missing_key_error(self, preset: str, implementation: str) -> KeyError:
        return KeyError(
            f"no point (preset={preset!r}, implementation={implementation!r}); "
            f"swept presets {self.presets or '(none)'} with implementations "
            f"{sorted({p.implementation for p in self.points}) or '(none)'}"
        )

    def point_of(self, preset: str, implementation: str) -> ScalingPoint:
        for p in self.points:
            if p.preset == preset and p.implementation == implementation:
                return p
        raise self._missing_key_error(preset, implementation)

    def times_of(self, preset: str, implementation: str) -> list[float]:
        """Replicate times in **replicate order** (the seed pairing)."""
        try:
            return [p.time for p in self.replicates[preset, implementation]]
        except KeyError:
            raise self._missing_key_error(preset, implementation) from None

    def mean_time(self, preset: str, implementation: str) -> float:
        try:
            return self.seed_stats[preset, implementation].mean
        except KeyError:
            raise self._missing_key_error(preset, implementation) from None

    def implementations(self) -> list[str]:
        """Swept implementations, in the figure's legend order."""
        have = {p.implementation for p in self.points}
        return [impl for impl in IMPLEMENTATIONS if impl in have]

    # -- paired significance ----------------------------------------------

    def paired_verdicts(self) -> dict[str, list[tuple[str, PairedVerdict]]]:
        """Matched-seed ORWL-Bind comparisons, Holm-corrected per family.

        For each baseline implementation, the family of paired tests is
        "ORWL-Bind vs this baseline at every swept size"; the
        Holm–Bonferroni correction runs across that family, so each
        returned :class:`PairedVerdict` carries both its raw and
        corrected p-value.  Keys are baseline names; values are
        ``(preset, verdict)`` pairs in sweep order.
        """
        impls = self.implementations()
        if "orwl-bind" not in impls:
            return {}
        out: dict[str, list[tuple[str, PairedVerdict]]] = {}
        for baseline in impls:
            if baseline == "orwl-bind":
                continue
            family = [
                compare_paired(
                    baseline,
                    self.times_of(preset, baseline),
                    "orwl-bind",
                    self.times_of(preset, "orwl-bind"),
                    alpha=self.alpha,
                )
                for preset in self.presets
            ]
            out[baseline] = list(zip(self.presets, correct_verdicts(family)))
        return out

    def speedup(self, preset: str, baseline: str) -> float:
        """Mean-time speedup of ORWL-Bind over *baseline* at one size."""
        return self.mean_time(preset, baseline) / self.mean_time(preset, "orwl-bind")

    def speedup_curve(self, baseline: str) -> list[tuple[int, float]]:
        """(cores, bind-speedup-over-baseline) in sweep order."""
        return [
            (self.sizes[preset], self.speedup(preset, baseline))
            for preset in self.presets
        ]

    def saturation(self, baseline: str = "orwl-nobind", gain: float = 0.05) -> Optional[int]:
        """The core count where the placement advantage stops growing.

        Returns the first swept size after which the ORWL-Bind speedup
        over *baseline* no longer improves by more than *gain*
        (default 5 %), or ``None`` if it is still growing at the
        largest machine.
        """
        curve = self.speedup_curve(baseline)
        for (cores, s0), (_, s1) in zip(curve, curve[1:]):
            if s1 <= s0 * (1.0 + gain):
                return cores
        return None

    # -- rendering ---------------------------------------------------------

    def speedup_table(self) -> str:
        """The headline table: per-size times, speedups, corrected p, delta.

        Column widths are derived from the longest implementation /
        preset name, so generated presets with long names stay aligned.
        """
        impls = self.implementations()
        verdicts = self.paired_verdicts()
        by_key = {
            (baseline, preset): v
            for baseline, rows in verdicts.items()
            for preset, v in rows
        }
        name_w = max([len("preset")] + [len(p) for p in self.presets])
        impl_w = max([10] + [len(i) + 7 for i in impls])
        header = f"{'preset':<{name_w}} {'cores':>6}"
        for impl in impls:
            header += f" {impl + ' mean':>{impl_w}}"
        for baseline in impls:
            if baseline == "orwl-bind":
                continue
            tag = "nobind" if baseline == "orwl-nobind" else baseline
            header += f" {'vs ' + tag:>10} {'p-corr':>8} {'delta':>7}"
        lines = [header, "-" * len(header)]
        for preset in self.presets:
            row = f"{preset:<{name_w}} {self.sizes[preset]:>6}"
            for impl in impls:
                try:
                    row += f" {self.mean_time(preset, impl):>{impl_w}.4f}"
                except KeyError:
                    row += f" {'-':>{impl_w}}"
            for baseline in impls:
                if baseline == "orwl-bind":
                    continue
                v = by_key.get((baseline, preset))
                if v is None:
                    row += f" {'-':>10} {'-':>8} {'-':>7}"
                    continue
                mark = "*" if v.significant else " "
                p = f"{v.p_corrected:.4f}" if v.p_corrected is not None else "n/a"
                row += f" {f'{v.speedup_mean:.2f}x{mark}':>10} {p:>8} {v.delta:>+7.2f}"
            lines.append(row)
        if self.n_seeds > 1:
            lines.append("")
            lines.append(
                f"paired sign-flip permutation tests over {self.n_seeds} matched "
                f"seeds; p-values Holm-Bonferroni-corrected across the "
                f"{len(self.presets)} swept sizes; * = significant at "
                f"alpha={self.alpha:g}; delta = Cliff's effect size."
            )
            for baseline, rows in verdicts.items():
                for preset, v in rows:
                    lines.append(f"  [{preset}] {v}")
        for baseline in ("orwl-nobind", "openmp"):
            if baseline not in impls or "orwl-bind" not in impls:
                continue
            sat = self.saturation(baseline)
            tag = "NoBind" if baseline == "orwl-nobind" else "OpenMP"
            lines.append(
                f"placement advantage vs {tag}: "
                + (
                    f"saturates at {sat} cores"
                    if sat is not None
                    else "still growing at the largest swept machine"
                )
            )
        return "\n".join(lines)

    def chart(self, width: int = 64, height: int = 16) -> str:
        """ASCII chart of the ORWL-Bind speedup curves vs machine size."""
        from repro.experiments.plotting import ascii_plot

        impls = self.implementations()
        series = {}
        for baseline in impls:
            if baseline == "orwl-bind":
                continue
            tag = "vs " + ("nobind" if baseline == "orwl-nobind" else baseline)
            series[tag] = [(float(c), s) for c, s in self.speedup_curve(baseline)]
        if not series:
            return "(no baselines to compare against)"
        return ascii_plot(
            series,
            width=width,
            height=height,
            xlabel="cores",
            ylabel="ORWL-Bind speedup (x)",
        )

    def to_json_dict(self) -> dict:
        """JSON-safe dump of the sweep (the nightly CI artifact)."""
        verdicts = self.paired_verdicts()
        return {
            "format": "repro-scaling",
            "presets": list(self.presets),
            "sizes": dict(self.sizes),
            "iterations": self.iterations,
            "cells_per_core": self.cells_per_core,
            "n_seeds": self.n_seeds,
            "alpha": self.alpha,
            "points": [
                {
                    "preset": p.preset,
                    "implementation": p.implementation,
                    "cores": p.n_cores,
                    "n": p.n,
                    "time": p.time,
                    "local_fraction": p.local_fraction,
                    "migrations": p.migrations,
                    "remote_bytes": p.remote_bytes,
                    # Only perf-report runs carry the analysis; keeping
                    # the key out otherwise leaves historical dumps
                    # byte-identical.
                    **({"perf": p.perf} if p.perf is not None else {}),
                }
                for p in self.points
            ],
            "stats": [
                {
                    "preset": preset,
                    "implementation": impl,
                    "n": s.n,
                    "mean": s.mean,
                    "median": s.median,
                    "stddev": s.stddev,
                    "ci_lo": s.ci_lo,
                    "ci_hi": s.ci_hi,
                    "confidence": s.confidence,
                }
                for (preset, impl), s in sorted(self.seed_stats.items())
            ],
            "paired_significance": [
                {
                    "preset": preset,
                    "baseline": v.baseline,
                    "candidate": v.candidate,
                    "n_pairs": v.n_pairs,
                    "speedup_mean": v.speedup_mean,
                    "speedup_ci": [v.speedup_ci_lo, v.speedup_ci_hi],
                    "delta": v.delta,
                    "effect": v.effect_label,
                    "p_value": v.p_value,
                    "p_corrected": v.p_corrected,
                    "verdict": v.verdict,
                    "method": v.method,
                }
                for rows in verdicts.values()
                for preset, v in rows
            ],
            "saturation": {
                baseline: self.saturation(baseline)
                for baseline in self.implementations()
                if baseline != "orwl-bind"
            },
        }


def run_scaling(
    presets: Sequence[str] = DEFAULT_PRESETS,
    implementations: Sequence[str] = IMPLEMENTATIONS,
    iterations: int = 3,
    cells_per_core: int = CELLS_PER_CORE,
    seed: int = 0,
    seeds: int = 1,
    confidence: float = 0.95,
    alpha: float = 0.05,
    n_workers: int = 1,
    runner: Optional[SweepRunner] = None,
    perf_report: bool = False,
    point_cache: Any = None,
) -> ScalingResult:
    """The full machine-size sweep.

    *presets* name entries of
    :data:`repro.topology.generate.SCALING_SPECS`; they are swept in
    ascending machine size regardless of input order.  Every point is
    replicated *seeds* times with the matched schedule of
    :func:`repro.stats.run_replicated` — the same derived seeds across
    implementations, which is what makes the per-size tests paired.
    Each replicate task carries the machine's PU count as its weight,
    so the runner's chunker dispatches 4096-core points alone instead
    of queueing light points behind them.

    Parallel sweeps export every swept machine's distance tables into
    shared memory (workers attach read-only views — on the 4096-PU
    preset that is the difference between one table and one per
    worker); *point_cache* follows
    :func:`repro.exec.cache.resolve_point_cache` (``None`` = the
    environment default, ``False`` = off), making nightly re-runs
    incremental.
    """
    for impl in implementations:
        if impl not in IMPLEMENTATIONS:
            raise ValidationError(
                f"unknown implementation {impl!r}; one of {IMPLEMENTATIONS}"
            )
    sized = scaling_sizes(presets)  # validates names, sorts ascending
    result = ScalingResult(
        presets=[name for name, _ in sized],
        sizes=dict(sized),
        iterations=iterations,
        cells_per_core=cells_per_core,
        n_seeds=seeds,
        alpha=alpha,
    )
    specs = [
        ReplicateSpec(
            run_scaling_point,
            dict(
                preset=preset,
                implementation=impl,
                iterations=iterations,
                cells_per_core=cells_per_core,
                perf_report=perf_report,
            ),
            key=(preset, impl),
            label=f"{impl}@{preset}",
            weight=float(n_cores),
        )
        for preset, n_cores in sized
        for impl in implementations
    ]
    sweep = run_replicated(
        specs,
        seeds=seeds,
        base_seed=seed,
        scope="scaling",
        value_of=_point_time,
        confidence=confidence,
        runner=runner,
        n_workers=n_workers,
        point_cache=point_cache,
        shared_topologies=[(preset, (), "default") for preset, _ in sized],
    )
    for point in sweep.points:
        result.points.append(point.first)
        result.replicates[point.key] = tuple(point.results)
        if point.stats is not None:
            result.seed_stats[point.key] = point.stats
    return result
