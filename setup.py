"""Shim for legacy editable installs (offline environments without the
``wheel`` package, where PEP 517 editable builds are unavailable)."""

from setuptools import setup

setup()
