"""Shared ``--perf-report DIR`` artifact writer of the sweep CLIs.

Both ``repro.tools.fig1`` and ``repro.tools.scaling`` attach a
:class:`repro.perf.PerfReport` JSON dict to every point when run with
``--perf-report``; this module turns those dicts into the on-disk
artifact set (what the nightly CI job uploads):

* ``<stem>.json`` / ``<stem>.txt`` — each point's full report;
* ``topdown-<group>.txt`` — per sweep group (a core count, a preset),
  the gap attribution of every implementation against the group's
  fastest one.
"""

from __future__ import annotations

from pathlib import Path
import json

from repro.perf import PerfReport, attribute_gap


def write_point_reports(
    directory: "str | Path",
    entries: list[tuple[str, tuple, "dict | None"]],
) -> int:
    """Write the artifact set; returns the number of files written.

    *entries* are ``(file stem, group key, perf JSON dict)`` triples —
    points whose dict is ``None`` (run without tracing) are skipped.
    """
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    n_files = 0
    groups: dict[tuple, list[PerfReport]] = {}
    for stem, group, perf in entries:
        if perf is None:
            continue
        report = PerfReport.from_json_dict(perf)
        groups.setdefault(group, []).append(report)
        with open(out_dir / f"{stem}.json", "w") as fh:
            json.dump(perf, fh, indent=2, sort_keys=True)
            fh.write("\n")
        (out_dir / f"{stem}.txt").write_text(
            report.render() + "\n", encoding="utf-8"
        )
        n_files += 2
    for group, reports in groups.items():
        if len(reports) < 2:
            continue
        fastest = min(reports, key=lambda r: r.measured_time)
        sections = []
        for report in reports:
            if report is fastest:
                continue
            sections.append(
                attribute_gap(
                    report.attribution, fastest.attribution,
                    slow_label=report.label, fast_label=fastest.label,
                    measured_slow=report.measured_time,
                    measured_fast=fastest.measured_time,
                ).render()
            )
        tag = "-".join(str(g) for g in group)
        (out_dir / f"topdown-{tag}.txt").write_text(
            "\n\n".join(sections) + "\n", encoding="utf-8"
        )
        n_files += 1
    return n_files
