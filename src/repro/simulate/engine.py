"""Discrete-event simulation core.

A tiny, deterministic event engine: a priority heap of ``(time, seq,
callback)`` entries.  ``seq`` is a monotonically increasing tie-breaker,
so two events at the same timestamp always fire in scheduling order and
every simulation is bit-for-bit reproducible.

Everything above (machine, threads, ORWL runtime) is built out of
:meth:`Engine.schedule` plus :class:`SimEvent` wait/notify.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised on engine misuse (negative delays, deadlock detection)."""


class Engine:
    """The event loop owning simulated time.

    The event loop is the single hottest code path in the repo — a
    paper-scale sweep fires tens of millions of events — so ``run``
    binds :meth:`step` once and hoists the per-event ``until`` check
    out of the drain loop, and the class carries ``__slots__`` (one
    engine exists per machine, but its attributes are read per event).
    Measurement note: on CPython 3.11 a loop over the pre-bound
    ``step`` beats a manually fused copy of its body by ~1.5× on this
    repo's workloads (the specializing interpreter inlines the call
    and keeps one hot code path), so ``run`` deliberately delegates
    per-event work to ``step`` — ``repro.tools.bench`` guards the
    equivalence and the throughput.
    """

    __slots__ = ("_now", "_heap", "_seq", "_events_fired", "probe")

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._events_fired = 0
        #: optional observability probe, called with the new simulated
        #: time after every step (see repro.observe.Tracer.on_engine_step).
        #: One ``is None`` check per event when unused.
        self.probe: Optional[Callable[[float], None]] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events processed so far (for diagnostics)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* at ``now + delay`` (delay may be 0, never negative)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), fn))

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Run *fn* at absolute simulated *time* (>= now)."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self._now})")
        heapq.heappush(self._heap, (time, next(self._seq), fn))

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _, fn = heapq.heappop(self._heap)
        self._now = time
        self._events_fired += 1
        if self.probe is not None:
            self.probe(time)
        fn()
        return True

    def run(self, until: Optional[float] = None, max_events: int = 500_000_000) -> float:
        """Drain the event queue (optionally stopping at time *until*).

        Returns the final simulated time.  *max_events* is a runaway
        guard; exceeding it raises :class:`SimulationError`.

        ``step`` is bound once and the untimed drain loop carries no
        ``until`` comparison (the timed variant binds the heap locally
        for its peek).  Callbacks may keep scheduling — ``schedule`` /
        ``at`` push onto the same heap ``step`` pops from.
        """
        step = self.step
        fired = 0
        if until is None:
            while step():
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; livelock?"
                    )
        else:
            heap = self._heap
            while heap:
                if heap[0][0] > until:
                    self._now = until
                    break
                step()
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; livelock?"
                    )
        return self._now


class SimEvent:
    """One-shot wait/notify: threads park on it, ``fire`` releases them.

    The callbacks are whatever the machine registers to resume a thread;
    firing an already-fired event is an error (ORWL grants are unique).
    """

    __slots__ = ("_engine", "_fired", "_release_at", "_waiters", "name")

    def __init__(self, engine: Engine, name: str = "") -> None:
        self._engine = engine
        self._fired = False
        self._release_at = 0.0
        self._waiters: list[Callable[[], None]] = []
        self.name = name

    @property
    def fired(self) -> bool:
        return self._fired

    def wait(self, callback: Callable[[], None]) -> None:
        """Invoke *callback* when the event releases.

        Waiting on an already-fired event still honours the fire delay:
        the callback runs at the event's release time (or immediately if
        that has passed).
        """
        if self._fired:
            self._engine.schedule(max(0.0, self._release_at - self._engine.now), callback)
        else:
            self._waiters.append(callback)

    def fire(self, delay: float = 0.0) -> None:
        """Release all waiters after *delay*; one-shot."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._release_at = self._engine.now + delay
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            self._engine.schedule(delay, cb)

    def __repr__(self) -> str:
        state = "fired" if self._fired else f"{len(self._waiters)} waiting"
        return f"<SimEvent {self.name!r} {state}>"
