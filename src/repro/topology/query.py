"""hwloc-style convenience queries over a :class:`Topology`.

These free functions mirror the parts of the hwloc C API that the
placement module and user code rely on (``hwloc_get_nbobjs_by_type``,
``hwloc_get_obj_inside_cpuset_by_type``, ``hwloc_get_closest_objs``,
singlified binding sets, ...).  They are thin, well-tested wrappers over
:class:`~repro.topology.tree.Topology` methods.
"""

from __future__ import annotations

from typing import Optional

from repro.topology.cpuset import CpuSet
from repro.topology.distance import hop_distance_matrix
from repro.topology.objects import ObjType, TopologyObject
from repro.topology.tree import Topology, TopologyError


def get_nbobjs_by_type(topo: Topology, type_: ObjType) -> int:
    """Number of objects of *type_* (0 if the level is absent)."""
    return topo.nbobjs_by_type(type_)


def get_obj_by_type(topo: Topology, type_: ObjType, index: int) -> TopologyObject:
    """The *index*-th object of *type_* in logical order."""
    objs = topo.objects_by_type(type_)
    if not 0 <= index < len(objs):
        raise TopologyError(
            f"no {type_.name} with logical index {index} (have {len(objs)})"
        )
    return objs[index]

def get_objs_inside_cpuset_by_type(
    topo: Topology, cpuset: CpuSet, type_: ObjType
) -> list[TopologyObject]:
    """Objects of *type_* entirely contained in *cpuset*."""
    return topo.objects_inside(cpuset, type_)


def get_first_largest_objs_inside_cpuset(
    topo: Topology, cpuset: CpuSet
) -> list[TopologyObject]:
    """Greedy cover of *cpuset* by maximal topology objects.

    The hwloc ``hwloc_get_first_largest_obj_inside_cpuset`` iteration:
    repeatedly take the largest object whose cpuset fits in the remainder.
    Useful for describing an arbitrary binding set compactly.
    """
    result: list[TopologyObject] = []
    remaining = cpuset & topo.cpuset
    while remaining:
        best: Optional[TopologyObject] = None
        for obj in topo:
            if obj.cpuset and obj.cpuset.issubset(remaining):
                if best is None or obj.cpuset.weight() > best.cpuset.weight():
                    best = obj
        if best is None:  # pragma: no cover - cpuset always contains PUs
            break
        result.append(best)
        remaining = remaining - best.cpuset
    return result


def get_closest_pus(
    topo: Topology, pu: TopologyObject, n: Optional[int] = None
) -> list[TopologyObject]:
    """PUs sorted by increasing hop distance from *pu* (excluding itself).

    Ties are broken by logical index, so the order is deterministic.
    """
    if pu.type is not ObjType.PU:
        raise TopologyError(f"expected a PU, got {pu.type.name}")
    hops = hop_distance_matrix(topo)
    i = pu.logical_index
    order = sorted(
        (j for j in range(topo.nb_pus) if j != i),
        key=lambda j: (int(hops[i, j]), j),
    )
    pus = topo.pus()
    out = [pus[j] for j in order]
    return out if n is None else out[:n]


def cpuset_of_numa_node(topo: Topology, numa_index: int) -> CpuSet:
    """The cpuset of NUMA node *numa_index* (logical order)."""
    return get_obj_by_type(topo, ObjType.NUMANODE, numa_index).cpuset


def distribute(topo: Topology, n: int) -> list[TopologyObject]:
    """Spread *n* slots over the machine (hwloc_distrib equivalent).

    Returns *n* PUs chosen to maximize spread: the tree is descended and
    slots are split proportionally between children at each level.  For
    ``n >= nb_pus`` the PUs are returned round-robin.
    """
    if n <= 0:
        raise ValueError(f"n must be > 0, got {n}")
    pus = list(topo.pus())
    if n >= len(pus):
        return [pus[i % len(pus)] for i in range(n)]

    out: list[TopologyObject] = []

    def spread(obj: TopologyObject, k: int) -> None:
        if k == 0:
            return
        if obj.type is ObjType.PU or not obj.children:
            # All k slots land on this PU's subtree head.
            head = next(obj.pus())
            out.extend([head] * k)
            return
        weights = [sum(1 for _ in c.pus()) for c in obj.children]
        total = sum(weights)
        # Largest-remainder apportionment of k slots among children.
        quotas = [k * w / total for w in weights]
        base = [int(q) for q in quotas]
        rem = k - sum(base)
        order = sorted(
            range(len(quotas)), key=lambda i: (quotas[i] - base[i], -weights[i]),
            reverse=True,
        )
        for i in order[:rem]:
            base[i] += 1
        for child, share in zip(obj.children, base):
            spread(child, share)

    spread(topo.root, n)
    return out


def summarize(topo: Topology) -> dict[str, int]:
    """Counts per object type, e.g. ``{"NUMANODE": 24, "CORE": 192, ...}``."""
    return {
        t.name: topo.nbobjs_by_type(t)
        for t in ObjType
        if topo.nbobjs_by_type(t) > 0
    }
