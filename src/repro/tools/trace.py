"""Trace a simulated run and export/audit its event stream.

Usage::

    # Perfetto timeline of the ring-pipeline example (open at
    # https://ui.perfetto.dev or chrome://tracing):
    python -m repro.tools.trace --workload ring --format chrome --out ring.json

    # Lossless archival stream + invariant audit + determinism hash:
    python -m repro.tools.trace --workload lk23 --n 2048 --iterations 2 \\
        --format jsonl --out lk23.jsonl --check --hash

    # Where did the bytes move?  Per-sharing-level traffic table:
    python -m repro.tools.trace --workload lk23 --policy nobind --traffic

    # Explore an archived stream: remote transfers only, with stats:
    python -m repro.tools.trace --input lk23.jsonl \\
        --filter kind=transfer,level=MACHINE --stats
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter

from repro.observe import (
    EventFilter,
    Tracer,
    TraceSummary,
    check_run,
    read_jsonl,
    run_fingerprint,
    write_chrome,
    write_jsonl,
)
from repro.orwl import AccessMode, Program, Runtime
from repro.placement.binder import bind_program
from repro.placement.policies import POLICY_REGISTRY
from repro.placement.report import render_traffic_report
from repro.simulate.machine import Machine
from repro.tools._common import resolve_topology


def build_ring(stages: int, rounds: int, packet_bytes: float,
               stage_seconds: float = 50e-6) -> Program:
    """The streaming ring pipeline of ``examples/ring_pipeline.py``:
    each stage reads its predecessor's packet, processes it, and
    publishes its own — all synchronization by ordered read-write locks.
    """
    prog = Program(f"ring-{stages}")
    for s in range(stages):
        prog.location(f"stage{s}/out", packet_bytes, owner_task=f"stage{s}")
    for s in range(stages):
        task = prog.task(f"stage{s}")
        op = task.operation("main", body=None)
        write_h = op.handle(prog.locations[f"stage{s}/out"], AccessMode.WRITE)
        read_h = op.handle(
            prog.locations[f"stage{(s - 1) % stages}/out"], AccessMode.READ
        )
        write_h.init_phase = 0
        read_h.init_phase = 1

        def body(ctx, write_h=write_h, read_h=read_h):
            yield from ctx.acquire(write_h)
            ctx.next(write_h)
            for _ in range(rounds):
                yield from ctx.acquire(read_h)
                yield ctx.compute(seconds=stage_seconds)
                ctx.next(read_h)
                yield from ctx.acquire(write_h)
                ctx.next(write_h)

        op.body = body
    prog.validate()
    return prog


def build_lk23(n: int, tasks: int, iterations: int) -> Program:
    from repro.comm.patterns import square_grid_shape
    from repro.kernels.lk23_orwl import Lk23Config, build_program

    rows, cols = square_grid_shape(tasks)
    return build_program(
        Lk23Config(n=n, grid_rows=rows, grid_cols=cols, iterations=iterations)
    )


def render_stats(events) -> str:
    """Per-kind duration statistics and per-level byte totals.

    The exploration companion of :class:`EventFilter`: after narrowing
    a large stream to the events of interest, this is the one-screen
    answer to "how many, how long, how heavy".
    """
    n = 0
    by_kind: dict[str, list[float]] = {}
    bytes_by_level: Counter = Counter()
    threads: set[int] = set()
    t_lo = float("inf")
    t_hi = 0.0
    for ev in events:
        n += 1
        by_kind.setdefault(ev.kind, []).append(ev.dur)
        if ev.kind == "transfer" and ev.level:
            bytes_by_level[ev.level] += ev.nbytes
        if ev.tid >= 0:
            threads.add(ev.tid)
        t_lo = min(t_lo, ev.ts)
        t_hi = max(t_hi, ev.end)
    if n == 0:
        return "(no events matched)"
    lines = [
        f"{n} events, {len(threads)} threads, "
        f"time range [{t_lo:.6g}, {t_hi:.6g}] s",
        f"{'kind':<12} {'count':>8} {'total s':>12} {'mean s':>12} "
        f"{'max s':>12}",
    ]
    lines.insert(1, "")
    for kind in sorted(by_kind):
        durs = by_kind[kind]
        total = sum(durs)
        lines.append(
            f"{kind:<12} {len(durs):>8} {total:>12.6g} "
            f"{total / len(durs):>12.6g} {max(durs):>12.6g}"
        )
    if bytes_by_level:
        lines.append("")
        for level, nbytes in sorted(bytes_by_level.items()):
            lines.append(f"bytes [{level:<9}] {nbytes:>14.6g}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.trace", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--workload", default="lk23", choices=["lk23", "ring"])
    parser.add_argument(
        "--topology", default="paper-smp",
        help="preset name, 'host', JSON/XML file, or synthetic spec",
    )
    parser.add_argument(
        "--policy", default="treematch", choices=sorted(POLICY_REGISTRY)
    )
    parser.add_argument("--n", type=int, default=4096, help="lk23 matrix size")
    parser.add_argument("--iterations", type=int, default=2, help="lk23 sweeps")
    parser.add_argument("--tasks", type=int, default=None,
                        help="lk23 tasks (default: one per core)")
    parser.add_argument("--stages", type=int, default=8, help="ring stages")
    parser.add_argument("--rounds", type=int, default=40, help="ring rounds")
    parser.add_argument("--packet-kib", type=float, default=1024.0,
                        help="ring packet size in KiB")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--format", default="chrome", choices=["chrome", "jsonl"])
    parser.add_argument("--out", default=None,
                        help="output file (default: no export, summary only)")
    parser.add_argument("--check", action="store_true",
                        help="audit conservation invariants; non-zero exit on "
                             "violation")
    parser.add_argument("--hash", action="store_true",
                        help="print the run's determinism fingerprint")
    parser.add_argument("--traffic", action="store_true",
                        help="print the per-sharing-level traffic table")
    parser.add_argument("--input", metavar="FILE",
                        help="read an archived JSONL stream instead of "
                             "running a workload (disables --check/--hash/"
                             "--traffic, which need the live machine)")
    parser.add_argument("--filter", metavar="SPEC", default="",
                        help="event selection, e.g. "
                             "'kind=transfer|wait,thread=*ctl*,level=MACHINE,"
                             "min-dur=1e-6' (applied before export/stats)")
    parser.add_argument("--stats", action="store_true",
                        help="print per-kind duration statistics and "
                             "per-level byte totals of the (filtered) stream")
    args = parser.parse_args(argv)

    try:
        event_filter = EventFilter.parse(args.filter)
    except ValueError as exc:
        parser.error(str(exc))

    if args.input:
        for flag in ("check", "hash", "traffic"):
            if getattr(args, flag):
                parser.error(f"--{flag} needs a live run; "
                             "it cannot audit an --input stream")
        events = tuple(read_jsonl(args.input))
        source = args.input
    else:
        topo = resolve_topology(args.topology)
        if args.workload == "ring":
            prog = build_ring(args.stages, args.rounds, args.packet_kib * 1024)
        else:
            tasks = args.tasks if args.tasks is not None else topo.nb_pus
            prog = build_lk23(args.n, tasks, args.iterations)

        plan = bind_program(prog, topo, policy=args.policy)
        tracer = Tracer()
        machine = Machine(topo, seed=args.seed, tracer=tracer)
        result = Runtime(
            prog, machine, mapping=plan.mapping, control_mapping=plan.control_mapping
        ).run()
        events = tracer.events
        source = f"{args.workload} on {topo} under {args.policy}"
        print(f"processing : {result.time:.6f} simulated s")

    if args.filter:
        selected = tuple(event_filter.apply(events))
        print(f"filter     : {args.filter!r} kept {len(selected)} of "
              f"{len(events)} events")
        events = selected

    summary = TraceSummary.of(events)
    print(f"workload   : {source}")
    print(f"trace      : {summary.events} events ({summary.spans} spans), "
          f"kinds { {k: v for k, v in sorted(summary.by_kind.items())} }")

    if args.stats:
        print()
        print(render_stats(events))

    if args.out:
        if args.format == "chrome":
            n = write_chrome(events, args.out,
                             process_name=f"{args.workload}/{args.policy}")
            print(f"exported   : {n} events -> {args.out} (chrome trace_event; "
                  "open in https://ui.perfetto.dev)")
        else:
            n = write_jsonl(events, args.out)
            print(f"exported   : {n} events -> {args.out} (JSON-lines)")

    if args.hash:
        print(f"fingerprint: {run_fingerprint(machine)}")

    if args.traffic:
        print()
        print(render_traffic_report(result.metrics))

    if args.check:
        report = check_run(machine, raise_on_violation=False)
        print(report.render())
        if not report.ok:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
