"""``repro.metrics`` — online telemetry for the reproduction.

Where :mod:`repro.observe` records *traces* (every event, post-hoc
analysis) and :mod:`repro.perf` mines them after a run, this package is
the **live** layer: a process-local :class:`MetricRegistry` of
counters / gauges / histograms instrumenting the placement service, the
sweep runner, the cache tiers, and the simulation engine, exposed as
Prometheus text, canonical-JSON snapshots, an HTTP endpoint, and the
``repro.tools.top`` dashboard.  See ``docs/observability.md`` for when
to reach for which layer.

Disabled by default; enable with ``REPRO_METRICS=on`` or
:func:`enable` (workers inherit via the environment variable).
"""

from repro.metrics.core import (
    ENV_METRICS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    Metric,
    MetricRegistry,
    SIM_TIME_BUCKETS,
    SIZE_BUCKETS,
    diff_dumps,
    disable,
    enable,
    exp_buckets,
    is_enabled,
    metric_id,
    registry,
    reset_registry,
    set_enabled,
)
from repro.metrics.expose import ExpositionError, parse_exposition, render_text

__all__ = [
    "ENV_METRICS",
    "Counter",
    "ExpositionError",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "Metric",
    "MetricRegistry",
    "SIM_TIME_BUCKETS",
    "SIZE_BUCKETS",
    "diff_dumps",
    "disable",
    "enable",
    "exp_buckets",
    "is_enabled",
    "metric_id",
    "parse_exposition",
    "registry",
    "render_text",
    "reset_registry",
    "set_enabled",
]
