#!/usr/bin/env python3
"""Reproduce the paper's Figure 1 end to end.

Sweeps core counts on the 24×8 SMP model and prints the processing-time
table for the three implementations (ORWL-Bind, ORWL-NoBind, OpenMP),
then the paper's scalar claims with our measured values.

Run:  python examples/fig1_reproduce.py [--full]

``--full`` uses the paper's 100 sweeps instead of 5 (slower; the curve
shape is identical because per-sweep time is steady-state).
"""

import argparse

from repro.experiments import run_fig1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="use the paper's 100 iterations"
    )
    parser.add_argument(
        "--cores",
        type=int,
        nargs="+",
        default=[8, 16, 32, 64, 96, 192],
        help="core counts to sweep (whole sockets of 8)",
    )
    args = parser.parse_args()
    iterations = 100 if args.full else 5

    print(f"Figure 1 sweep: LK23 16384x16384, {iterations} sweeps")
    print("(times are simulated seconds on the modeled 24x8 SMP)\n")
    result = run_fig1(core_counts=tuple(args.cores), iterations=iterations, n=16384)
    print(result.table())
    print()
    print("Paper's claims vs this reproduction:")
    print(f"  C2 speedup vs OpenMP     : paper ~5    measured {result.speedup_vs_openmp():.2f}")
    print(f"  C3 speedup vs ORWL-NoBind: paper ~2.8  measured {result.speedup_vs_nobind():.2f}")
    stall = result.openmp_scaling_stalls_after()
    print(f"  C4 OpenMP stops scaling  : paper 'beyond 1-2 sockets'  measured after {stall} cores")


if __name__ == "__main__":
    main()
