"""Pairwise speedup distributions and significance verdicts.

The paper's Figure 1 reports single runs, so a reproduction that also
runs once per point cannot say whether "ORWL-Bind is 5× faster than
OpenMP" is a placement effect or seed luck.  This module turns two
replicate samples (baseline vs candidate processing times) into:

* a **speedup distribution** — bootstrap resamples of
  ``mean(baseline) / mean(candidate)`` with a percentile CI;
* a **permutation test** p-value on the difference of means (exact
  enumeration when the group sizes allow, seeded Monte Carlo
  otherwise);
* a **verdict**: ``significant`` when the two per-group confidence
  intervals do not overlap *or* the permutation p-value clears *alpha*;
  ``insufficient-data`` when either side has fewer than two replicates
  (a single run supports no inference — exactly the paper's situation).

Because replicated sweeps run the *same seed schedule* for every
implementation, the samples are matched pairs, and the **paired** tools
here are strictly more powerful than the unpaired ones:

* :func:`paired_permutation_pvalue` — a sign-flip permutation test on
  the per-seed differences (exact enumeration of the ``2^n`` flips when
  feasible, seeded Monte Carlo otherwise);
* :func:`cliffs_delta` — a nonparametric effect size in ``[-1, 1]``
  reported alongside every p-value (a tiny p on a negligible effect is
  not a finding);
* :func:`holm_bonferroni` — multiple-comparison correction for sweeps
  that test many machine sizes at once; corrected p-values are never
  smaller than the raw ones and preserve their order;
* :func:`compare_paired` / :class:`PairedVerdict` — the full matched
  comparison used by the scaling study.

Everything is deterministic: fixed internal streams, inputs sorted
before use (except paired inputs, whose order *is* the pairing), so
serial and parallel sweeps produce bit-identical verdicts.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.stats.aggregate import SeedStats, summarize
from repro.util.validate import ValidationError

#: Fixed streams, distinct from the aggregation bootstrap.
_SPEEDUP_SEED = 20160927
_PERMUTE_SEED = 20160928
_PAIRED_SEED = 20160929

#: Exact permutation enumeration is used while C(n_a+n_b, n_a) stays
#: below this; beyond it a seeded Monte Carlo sample is drawn instead.
EXACT_PERMUTATION_LIMIT = 20_000

#: Exact sign-flip enumeration is used while 2**n_pairs stays below
#: this (n_pairs <= 14); beyond it a seeded Monte Carlo sample is drawn.
EXACT_SIGN_FLIP_LIMIT = 20_000


@dataclass(frozen=True)
class SpeedupVerdict:
    """The comparison of one implementation pair.

    ``speedup_mean`` is ``mean(baseline times) / mean(candidate times)``
    — > 1 means the candidate is faster.  ``p_value`` is ``None`` when
    either sample is a single run.
    """

    baseline: str
    candidate: str
    speedup_mean: float
    speedup_ci_lo: float
    speedup_ci_hi: float
    p_value: Optional[float]
    alpha: float
    significant: bool
    verdict: str  #: "significant" | "not-significant" | "insufficient-data"
    method: str  #: "exact-permutation" | "monte-carlo-permutation" | "none"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        p = f"p={self.p_value:.4f}" if self.p_value is not None else "p=n/a"
        return (
            f"{self.candidate} vs {self.baseline}: "
            f"{self.speedup_mean:.2f}x "
            f"[{self.speedup_ci_lo:.2f}, {self.speedup_ci_hi:.2f}] "
            f"{p} -> {self.verdict}"
        )


def permutation_pvalue(
    a: Sequence[float],
    b: Sequence[float],
    n_perm: int = 10_000,
) -> tuple[Optional[float], str]:
    """Two-sided permutation test on the difference of means.

    Returns ``(p_value, method)``; ``(None, "none")`` when either group
    has fewer than two observations.  Exact enumeration of the
    ``C(n_a+n_b, n_a)`` group relabelings is used when feasible,
    otherwise *n_perm* seeded random relabelings (with the +1 additive
    smoothing that keeps a Monte Carlo p-value valid and non-zero).
    """
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if a.size < 2 or b.size < 2:
        return None, "none"
    observed = abs(a.mean() - b.mean())
    pooled = np.concatenate([a, b])
    n_total, n_a = pooled.size, a.size
    total_sum = float(pooled.sum())
    # A relabeling is characterized by which indices form group A; the
    # difference of means is then a pure function of group A's sum.
    eps = 1e-12 * max(1.0, abs(observed))
    if math.comb(n_total, n_a) <= EXACT_PERMUTATION_LIMIT:
        hits = 0
        count = 0
        for combo in itertools.combinations(range(n_total), n_a):
            sum_a = float(pooled[list(combo)].sum())
            mean_a = sum_a / n_a
            mean_b = (total_sum - sum_a) / (n_total - n_a)
            if abs(mean_a - mean_b) >= observed - eps:
                hits += 1
            count += 1
        return hits / count, "exact-permutation"
    rng = np.random.default_rng(_PERMUTE_SEED)
    hits = 0
    for _ in range(n_perm):
        perm = rng.permutation(n_total)
        sum_a = float(pooled[perm[:n_a]].sum())
        mean_a = sum_a / n_a
        mean_b = (total_sum - sum_a) / (n_total - n_a)
        if abs(mean_a - mean_b) >= observed - eps:
            hits += 1
    return (hits + 1) / (n_perm + 1), "monte-carlo-permutation"


def speedup_distribution(
    baseline_times: Sequence[float],
    candidate_times: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
) -> tuple[float, float, float]:
    """``(speedup, ci_lo, ci_hi)`` of mean(baseline)/mean(candidate).

    The CI is a percentile bootstrap resampling both groups
    independently; with single-run groups it degenerates to the point
    estimate.  Deterministic (fixed stream, sorted inputs).
    """
    a = np.sort(np.asarray(baseline_times, dtype=float))
    b = np.sort(np.asarray(candidate_times, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValidationError("speedup needs at least one time per group")
    if float(b.mean()) == 0.0:
        raise ValidationError("candidate mean time is zero")
    point = float(a.mean()) / float(b.mean())
    if a.size < 2 or b.size < 2:
        return point, point, point
    rng = np.random.default_rng(_SPEEDUP_SEED)
    means_a = a[rng.integers(0, a.size, size=(n_boot, a.size))].mean(axis=1)
    means_b = b[rng.integers(0, b.size, size=(n_boot, b.size))].mean(axis=1)
    ratios = means_a / means_b
    alpha = 1.0 - confidence
    lo = float(np.quantile(ratios, alpha / 2.0))
    hi = float(np.quantile(ratios, 1.0 - alpha / 2.0))
    return point, min(lo, point), max(hi, point)


def compare(
    baseline: str,
    baseline_times: Sequence[float],
    candidate: str,
    candidate_times: Sequence[float],
    alpha: float = 0.05,
    confidence: float = 0.95,
    n_perm: int = 10_000,
) -> SpeedupVerdict:
    """Full pairwise comparison of two replicate samples.

    *baseline_times* / *candidate_times* are processing times (lower is
    better); the verdict says whether the candidate's advantage (or
    deficit) is distinguishable from seed noise.
    """
    speedup, lo, hi = speedup_distribution(
        baseline_times, candidate_times, confidence=confidence
    )
    p_value, method = permutation_pvalue(
        baseline_times, candidate_times, n_perm=n_perm
    )
    if p_value is None:
        return SpeedupVerdict(
            baseline=baseline, candidate=candidate,
            speedup_mean=speedup, speedup_ci_lo=lo, speedup_ci_hi=hi,
            p_value=None, alpha=alpha, significant=False,
            verdict="insufficient-data", method=method,
        )
    stats_a = summarize(baseline_times, confidence=confidence)
    stats_b = summarize(candidate_times, confidence=confidence)
    significant = (not stats_a.overlaps(stats_b)) or p_value < alpha
    return SpeedupVerdict(
        baseline=baseline, candidate=candidate,
        speedup_mean=speedup, speedup_ci_lo=lo, speedup_ci_hi=hi,
        p_value=p_value, alpha=alpha, significant=significant,
        verdict="significant" if significant else "not-significant",
        method=method,
    )


def compare_stats(
    baseline: str,
    baseline_stats: SeedStats,
    candidate: str,
    candidate_stats: SeedStats,
    alpha: float = 0.05,
    n_perm: int = 10_000,
) -> SpeedupVerdict:
    """:func:`compare` on two :class:`SeedStats` (uses their values)."""
    return compare(
        baseline, baseline_stats.values,
        candidate, candidate_stats.values,
        alpha=alpha, confidence=baseline_stats.confidence, n_perm=n_perm,
    )


# -- paired (matched-seed) machinery ---------------------------------------


def cliffs_delta(a: Sequence[float], b: Sequence[float]) -> float:
    """Cliff's delta effect size: ``P(a > b) - P(a < b)`` over all pairs.

    Nonparametric and bounded in ``[-1, 1]``: +1 means every value of
    *a* exceeds every value of *b*, 0 means complete overlap.  For
    processing times with *a* the baseline and *b* the candidate, a
    positive delta says the candidate is systematically faster.
    Conventional magnitude labels: |d| < 0.147 negligible, < 0.33 small,
    < 0.474 medium, else large (Romano et al. 2006).
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size == 0 or y.size == 0:
        raise ValidationError("cliffs_delta needs at least one value per group")
    diff = x[:, None] - y[None, :]
    return float((np.sign(diff)).mean())


def cliffs_delta_label(delta: float) -> str:
    """The conventional magnitude label of a Cliff's delta."""
    d = abs(delta)
    if d < 0.147:
        return "negligible"
    if d < 0.33:
        return "small"
    if d < 0.474:
        return "medium"
    return "large"


def paired_permutation_pvalue(
    a: Sequence[float],
    b: Sequence[float],
    n_perm: int = 10_000,
) -> tuple[Optional[float], str]:
    """Two-sided paired (sign-flip) permutation test on mean difference.

    *a* and *b* must be **matched by index** — in a replicated sweep,
    entry *r* of both is the measurement under the same derived seed.
    Under the null, each per-pair difference is symmetric around zero,
    so the test enumerates sign assignments of the differences: all
    ``2^n`` of them when feasible, otherwise *n_perm* seeded random
    flips (with +1 smoothing).  Returns ``(None, "none")`` with fewer
    than two pairs.

    On identical samples every difference is zero, every flip ties the
    observed statistic, and the p-value is exactly 1.0 — "no evidence"
    rather than a division-by-zero corner.
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.shape != y.shape:
        raise ValidationError(
            f"paired samples must have equal length, got {x.size} and {y.size}"
        )
    n = x.size
    if n < 2:
        return None, "none"
    diffs = x - y
    observed = abs(float(diffs.mean()))
    eps = 1e-12 * max(1.0, observed)
    if 2**n <= EXACT_SIGN_FLIP_LIMIT:
        hits = 0
        total = 2**n
        for mask in range(total):
            signed = 0.0
            for k in range(n):
                signed += diffs[k] if (mask >> k) & 1 else -diffs[k]
            if abs(signed / n) >= observed - eps:
                hits += 1
        return hits / total, "exact-sign-flip"
    rng = np.random.default_rng(_PAIRED_SEED)
    signs = rng.choice((-1.0, 1.0), size=(n_perm, n))
    means = np.abs((signs * diffs).mean(axis=1))
    hits = int((means >= observed - eps).sum())
    return (hits + 1) / (n_perm + 1), "monte-carlo-sign-flip"


def holm_bonferroni(p_values: Sequence[float]) -> list[float]:
    """Holm–Bonferroni step-down correction.

    Returns the adjusted p-values in the input order.  Properties the
    tests pin: every adjusted value is >= its raw value, the adjustment
    preserves the raw ordering (it is a running maximum over the
    step-down products), and everything is clipped to 1.0.
    """
    m = len(p_values)
    if m == 0:
        return []
    for p in p_values:
        if not 0.0 <= p <= 1.0:
            raise ValidationError(f"p-values must be in [0, 1], got {p}")
    order = sorted(range(m), key=lambda k: p_values[k])
    adjusted = [0.0] * m
    running = 0.0
    for rank, k in enumerate(order):
        running = max(running, (m - rank) * p_values[k])
        adjusted[k] = min(1.0, running)
    return adjusted


@dataclass(frozen=True)
class PairedVerdict:
    """A matched-seed comparison of one implementation pair at one point.

    ``speedup_mean`` is ``mean(baseline) / mean(candidate)`` (> 1: the
    candidate is faster); ``delta`` is Cliff's delta of baseline over
    candidate times (positive: candidate systematically faster).
    ``p_corrected`` is filled by :func:`correct_verdicts` when the
    verdict is part of a swept family; until then it equals ``p_value``.
    The ``significant`` flag always refers to the *corrected* p-value.
    """

    baseline: str
    candidate: str
    n_pairs: int
    speedup_mean: float
    speedup_ci_lo: float
    speedup_ci_hi: float
    delta: float
    p_value: Optional[float]
    p_corrected: Optional[float]
    alpha: float
    significant: bool
    verdict: str  #: "significant" | "not-significant" | "insufficient-data"
    method: str  #: "exact-sign-flip" | "monte-carlo-sign-flip" | "none"

    @property
    def effect_label(self) -> str:
        """Magnitude label of :attr:`delta` (negligible/small/medium/large)."""
        return cliffs_delta_label(self.delta)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        p = (
            f"p={self.p_value:.4f} (corrected {self.p_corrected:.4f})"
            if self.p_value is not None and self.p_corrected is not None
            else "p=n/a"
        )
        return (
            f"{self.candidate} vs {self.baseline} [{self.n_pairs} pairs]: "
            f"{self.speedup_mean:.2f}x "
            f"[{self.speedup_ci_lo:.2f}, {self.speedup_ci_hi:.2f}] "
            f"{p} delta={self.delta:+.2f} ({self.effect_label}) "
            f"-> {self.verdict}"
        )


def compare_paired(
    baseline: str,
    baseline_times: Sequence[float],
    candidate: str,
    candidate_times: Sequence[float],
    alpha: float = 0.05,
    confidence: float = 0.95,
    n_perm: int = 10_000,
) -> PairedVerdict:
    """Full paired comparison of two matched replicate samples.

    Inputs must be in replicate order (index *r* of both sides ran the
    same derived seed).  ``p_corrected`` starts equal to the raw
    p-value; apply :func:`correct_verdicts` over a family of verdicts
    when several sizes are tested together.
    """
    speedup, lo, hi = speedup_distribution(
        baseline_times, candidate_times, confidence=confidence
    )
    p_value, method = paired_permutation_pvalue(
        baseline_times, candidate_times, n_perm=n_perm
    )
    n_pairs = len(baseline_times)
    delta = cliffs_delta(baseline_times, candidate_times)
    if p_value is None:
        return PairedVerdict(
            baseline=baseline, candidate=candidate, n_pairs=n_pairs,
            speedup_mean=speedup, speedup_ci_lo=lo, speedup_ci_hi=hi,
            delta=delta, p_value=None, p_corrected=None, alpha=alpha,
            significant=False, verdict="insufficient-data", method=method,
        )
    significant = p_value < alpha
    return PairedVerdict(
        baseline=baseline, candidate=candidate, n_pairs=n_pairs,
        speedup_mean=speedup, speedup_ci_lo=lo, speedup_ci_hi=hi,
        delta=delta, p_value=p_value, p_corrected=p_value, alpha=alpha,
        significant=significant,
        verdict="significant" if significant else "not-significant",
        method=method,
    )


def correct_verdicts(verdicts: Sequence[PairedVerdict]) -> list[PairedVerdict]:
    """Apply Holm–Bonferroni across a family of paired verdicts.

    The family is everything passed in — for the scaling study, one
    baseline/candidate pair across all swept machine sizes.  Verdicts
    without a p-value (insufficient data) pass through unchanged and do
    not count toward the correction's family size.  Each returned
    verdict carries ``p_corrected`` and has ``significant`` /
    ``verdict`` recomputed against it.
    """
    testable = [k for k, v in enumerate(verdicts) if v.p_value is not None]
    adjusted = holm_bonferroni([verdicts[k].p_value for k in testable])  # type: ignore[misc]
    by_index = dict(zip(testable, adjusted))
    out: list[PairedVerdict] = []
    for k, v in enumerate(verdicts):
        if k not in by_index:
            out.append(v)
            continue
        p_corr = by_index[k]
        significant = p_corr < v.alpha
        out.append(
            replace(
                v,
                p_corrected=p_corr,
                significant=significant,
                verdict="significant" if significant else "not-significant",
            )
        )
    return out
