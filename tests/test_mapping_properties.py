"""Property-based tests for treematch mappings.

No hypothesis here on purpose: the generators are plain seeded
``numpy.random.default_rng`` draws, so every case is reproducible from
its printed seed and the suite adds no dependency.  Across ~200 random
(topology, matrix) pairs we assert the properties Algorithm 1 promises:

* the result is a valid assignment into the topology (every bound PU
  exists) and every entity is bound;
* when there are at least as many PUs as entities, the assignment is an
  injection — no two threads share a PU;
* when oversubscribed, the per-PU load never exceeds the balanced bound
  ``ceil(order / nb_pus)``;
* the mapping respects the tree arity: sibling leaves are filled before
  spilling to the next subtree, so occupancy per internal node is also
  within its balanced bound.
"""

import math
from collections import Counter

import numpy as np
import pytest

from repro.comm.matrix import CommMatrix
from repro.topology.builder import from_spec
from repro.topology.objects import ObjType
from repro.treematch.algorithm import tree_match
from repro.treematch.mapping import Mapping

N_CASES = 200
MASTER_SEED = 20160913  # CLUSTER'16 conference date


def random_case(rng):
    """One random (topology, matrix) pair, small enough to be fast.

    Topology: 2-4 levels with arities in 1..4, capped at 16 PUs.
    Matrix: random symmetric order in 2..min(10, nb_pus + 4) — sometimes
    oversubscribed on purpose.
    """
    while True:
        depth = int(rng.integers(2, 5))
        arities = [int(rng.integers(1, 5)) for _ in range(depth)]
        nb_pus = math.prod(arities)
        if 2 <= nb_pus <= 16:
            break
    names = ["numa", "package", "l3", "core"][: depth - 1]
    terms = [f"{n}:{a}" for n, a in zip(names, arities[:-1])]
    terms.append(f"pu:{arities[-1]}")
    topo = from_spec(" ".join(terms))

    order = int(rng.integers(2, min(10, nb_pus + 4) + 1))
    m = rng.random((order, order)) * rng.choice([1.0, 1e3, 1e6])
    # Sprinkle zeros so sparse patterns are covered too.
    m[rng.random((order, order)) < 0.3] = 0.0
    matrix = CommMatrix(m, symmetrize=True)
    return topo, matrix


def cases():
    rng = np.random.default_rng(MASTER_SEED)
    for i in range(N_CASES):
        yield i, random_case(rng)


def subtree_pu_sets(topo):
    """os_index sets of the PUs under each internal object."""
    out = []
    for obj in topo:
        if obj.type is ObjType.PU:
            continue
        out.append({pu.os_index for pu in obj.pus()})
    return out


def test_tree_match_properties_hold_across_random_cases():
    checked = 0
    for i, (topo, matrix) in cases():
        result = tree_match(topo, matrix)
        mapping = result.mapping
        ctx = f"case {i}: {topo!r} order={matrix.order}"

        # Valid assignment, fully bound.
        mapping.validate_against(topo)
        assert mapping.n_threads == matrix.order, ctx
        assert mapping.bound_fraction() == 1.0, ctx

        occ = mapping.occupancy()
        cap = math.ceil(matrix.order / topo.nb_pus)
        if matrix.order <= topo.nb_pus:
            # Injection: no PU sharing when there is room.
            assert mapping.max_load() == 1, ctx
            assert len(set(mapping.pu_of)) == matrix.order, ctx
        else:
            # Oversubscription stays balanced.
            assert mapping.max_load() <= cap, ctx

        # Arity respected at every internal level: no subtree holds more
        # threads than its share of balanced leaf slots.
        for pu_set in subtree_pu_sets(topo):
            load = sum(occ.get(p, 0) for p in pu_set)
            assert load <= cap * len(pu_set), (
                f"{ctx}: subtree of {len(pu_set)} PUs holds {load} threads"
            )
        checked += 1
    assert checked == N_CASES


def test_tree_match_is_deterministic_per_case():
    rng = np.random.default_rng(MASTER_SEED + 1)
    for _ in range(10):
        topo, matrix = random_case(rng)
        a = tree_match(topo, matrix).mapping
        b = tree_match(topo, matrix).mapping
        assert a.pu_of == b.pu_of


def test_heavy_pair_lands_closer_than_random_on_average():
    """Directional sanity: over many random cases, the heaviest-talking
    pair should share a deeper ancestor at least as often as a random
    placement would achieve (i.e. TreeMatch is not anti-correlated with
    the matrix).  Checked in aggregate, not per case — individual cases
    may legitimately trade one pair for global cost.
    """
    rng = np.random.default_rng(MASTER_SEED + 2)
    wins = ties = losses = 0
    for _ in range(60):
        topo, matrix = random_case(rng)
        if matrix.order > topo.nb_pus or topo.nb_pus < 4:
            continue
        m = matrix.values
        i, j = np.unravel_index(np.argmax(m), m.shape)
        if m[i, j] == 0:
            continue
        mapping = tree_match(topo, matrix).mapping
        d_tm = depth_of_lca(topo, mapping.pu(int(i)), mapping.pu(int(j)))
        # Random baseline: expected LCA depth of two distinct PUs.
        rand_depths = []
        pus = [p.os_index for p in topo.pus()]
        for _ in range(16):
            a, b = rng.choice(pus, size=2, replace=False)
            rand_depths.append(depth_of_lca(topo, int(a), int(b)))
        base = float(np.mean(rand_depths))
        if d_tm > base:
            wins += 1
        elif d_tm == base:
            ties += 1
        else:
            losses += 1
    assert wins + ties >= losses, (wins, ties, losses)


def depth_of_lca(topo, pu_a: int, pu_b: int) -> int:
    return topo.common_ancestor_depth(pu_a, pu_b)


class TestMappingObject:
    """Properties of the Mapping value object itself, random-vector style."""

    def test_save_load_round_trip(self, tmp_path):
        rng = np.random.default_rng(7)
        for k in range(20):
            n = int(rng.integers(1, 12))
            pus = tuple(int(rng.integers(-1, 16)) for _ in range(n))
            mp = Mapping(pus, policy=f"p{k}")
            path = tmp_path / f"m{k}.rank"
            mp.save(path)
            back = Mapping.load(path)
            assert back.pu_of == mp.pu_of
            assert back.labels == mp.labels
            assert back.policy == mp.policy

    def test_occupancy_and_threads_on_agree(self):
        rng = np.random.default_rng(11)
        for _ in range(30):
            n = int(rng.integers(1, 20))
            mp = Mapping(tuple(int(rng.integers(-1, 6)) for _ in range(n)))
            occ = mp.occupancy()
            assert sum(occ.values()) == sum(1 for p in mp.pu_of if p >= 0)
            recount = Counter()
            for pu in set(mp.pu_of):
                if pu >= 0:
                    recount[pu] = len(mp.threads_on(pu))
            assert recount == occ

    def test_restricted_preserves_prefix(self):
        mp = Mapping((3, 1, 4, 1, 5), policy="x")
        sub = mp.restricted(3)
        assert sub.pu_of == (3, 1, 4)
        assert sub.labels == mp.labels[:3]
        assert sub.policy == "x"
