"""Placement-service latency gates on the paper preset.

Three contracts, all on the paper's 24-node × 8-core machine
(192 PUs) with a 192-thread stencil matrix:

* a **warm** cached query must be >= 10x faster than the **cold**
  TreeMatch run that populated it (the memo answers from a dict, not
  Algorithm 1);
* the warm query **p50 must stay under 1 ms** — the number the CI
  bench gate watches (see ``.github/workflows/ci.yml``);
* the asyncio front end must sustain **>= 1000 queries/sec** under
  thousands of concurrent requests (single-flight de-duplication and
  the decision memo make this a scheduling benchmark, not a mapping
  one).

Identity is asserted throughout: every warm or concurrent answer must
be byte-identical to the cold decision — speed can only come from *not
recomputing*, never from computing something else.
"""

import asyncio
import time

from repro.comm import patterns
from repro.exec.cache import clear_cache, reset_cache_stats
from repro.placement.service import PlacementService
from repro.topology import presets

NODES, CORES = 24, 8
MATRIX_SIDE = 16  # 16 x 12 stencil = 192 threads on 192 PUs
MIN_WARM_SPEEDUP = 10.0
MAX_WARM_P50_S = 1e-3
MIN_CONCURRENT_QPS = 1000.0
WARM_SAMPLES = 200
CONCURRENT_REQUESTS = 2000


def _setup():
    clear_cache()
    reset_cache_stats()
    topo = presets.paper_smp(NODES, CORES)
    matrix = patterns.stencil_2d(MATRIX_SIDE, 12, edge_volume=1000.0)
    assert matrix.order == topo.nb_pus == 192
    return topo, matrix


def test_warm_query_speedup_and_p50(benchmark):
    topo, matrix = _setup()
    service = PlacementService(topo)

    t0 = time.perf_counter()
    cold = service.query_sync(matrix)
    cold_wall = time.perf_counter() - t0
    assert not cold.cached

    samples = []

    def warm_run():
        for _ in range(WARM_SAMPLES):
            t0 = time.perf_counter()
            decision = service.query_sync(matrix)
            samples.append(time.perf_counter() - t0)
            assert decision.cached
            assert decision.mapping.pu_of == cold.mapping.pu_of
        return samples

    benchmark.pedantic(warm_run, rounds=1, iterations=1)
    samples.sort()
    p50 = samples[len(samples) // 2]
    speedup = cold_wall / p50 if p50 > 0 else float("inf")

    benchmark.extra_info["cold_wall_s"] = cold_wall
    benchmark.extra_info["warm_p50_s"] = p50
    benchmark.extra_info["warm_p99_s"] = samples[int(len(samples) * 0.99)]
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm query only {speedup:.1f}x cold ({cold_wall * 1e3:.1f} ms vs "
        f"p50 {p50 * 1e6:.0f} us); contract requires >= {MIN_WARM_SPEEDUP}x"
    )
    assert p50 < MAX_WARM_P50_S, (
        f"warm p50 {p50 * 1e6:.0f} us breaches the "
        f"{MAX_WARM_P50_S * 1e3:.0f} ms latency gate on the paper preset"
    )


def test_concurrent_queries_per_second(benchmark):
    topo, matrix = _setup()
    service = PlacementService(topo)
    reference = service.query_sync(matrix)  # populate once

    async def flood():
        return await asyncio.gather(
            *[service.query(matrix) for _ in range(CONCURRENT_REQUESTS)]
        )

    def timed():
        t0 = time.perf_counter()
        decisions = asyncio.run(flood())
        wall = time.perf_counter() - t0
        return decisions, wall

    decisions, wall = benchmark.pedantic(timed, rounds=1, iterations=1)
    assert len(decisions) == CONCURRENT_REQUESTS
    assert all(d.mapping.pu_of == reference.mapping.pu_of for d in decisions)

    qps = CONCURRENT_REQUESTS / wall
    benchmark.extra_info["concurrent_requests"] = CONCURRENT_REQUESTS
    benchmark.extra_info["wall_s"] = wall
    benchmark.extra_info["queries_per_s"] = qps
    assert qps >= MIN_CONCURRENT_QPS, (
        f"sustained only {qps:.0f} queries/sec over {CONCURRENT_REQUESTS} "
        f"concurrent requests; contract requires >= {MIN_CONCURRENT_QPS:.0f}"
    )
