"""The adapted TreeMatch mapping algorithm (the paper's Algorithm 1).

Pipeline: a communication matrix (from :mod:`repro.comm`) plus a
topology (from :mod:`repro.topology`) go in; a thread → PU
:class:`~repro.treematch.mapping.Mapping` comes out.

* :mod:`~repro.treematch.grouping` — ``GroupProcesses`` (exact + greedy).
* :mod:`~repro.treematch.oversubscription` — virtual-level insertion
  when tasks outnumber PUs (paper extension #1).
* :mod:`~repro.treematch.control` — ORWL control-thread strategies
  (paper extension #2).
* :mod:`~repro.treematch.algorithm` — Algorithm 1 itself.
* :mod:`~repro.treematch.mapping` — the result object and ``MapGroups``.
* :mod:`~repro.treematch.cost` — hop-bytes / NUMA-cut / cache-share
  quality metrics.
"""

from repro.treematch.algorithm import TreeMatchResult, tree_match, tree_match_arities
from repro.treematch.anneal import AnnealConfig, anneal_mapping
from repro.treematch.bisection import group_bisection
from repro.treematch.control import ControlPlan, ControlStrategy
from repro.treematch.grouping import group_processes
from repro.treematch.mapping import Mapping, map_groups
from repro.treematch.oversubscription import OversubscriptionPlan
from repro.treematch.remap import (
    RemapResult,
    place_restricted,
    remap_full,
    remap_incremental,
    repair_domains,
)
from repro.treematch import cost

__all__ = [
    "TreeMatchResult",
    "tree_match",
    "tree_match_arities",
    "ControlPlan",
    "ControlStrategy",
    "AnnealConfig",
    "anneal_mapping",
    "group_bisection",
    "group_processes",
    "Mapping",
    "map_groups",
    "OversubscriptionPlan",
    "RemapResult",
    "place_restricted",
    "remap_full",
    "remap_incremental",
    "repair_domains",
    "cost",
]
