"""The metrics bus: file-based snapshot hand-off between processes.

A sweep process periodically writes the registry's full snapshot to a
JSON file (atomic ``tmp + os.replace`` so readers never observe a torn
write); ``repro.tools.top`` tails that file and renders the dashboard.
Deliberately boring — no sockets, no daemons — so it works inside CI,
over SSH, and under every start method the process pool supports.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

from repro.metrics import core
from repro.metrics.core import MetricRegistry

__all__ = ["SnapshotWriter", "read_snapshot"]


class SnapshotWriter:
    """Rate-limited atomic snapshot dumps of a registry to *path*.

    ``__call__`` matches the :class:`repro.exec.progress.SweepEvent`
    sink signature so a writer can be passed straight to
    ``SweepRunner.map(on_event=...)``; it also works as a plain
    zero-argument flush.  Writes at most once per *min_interval*
    seconds except for ``sweep_end`` events and explicit
    :meth:`flush` calls, which always write.
    """

    def __init__(
        self,
        path: str,
        *,
        registry: MetricRegistry | None = None,
        min_interval: float = 0.5,
    ) -> None:
        self.path = path
        self.registry = registry
        self.min_interval = min_interval
        self._last_write = 0.0
        self.writes = 0

    def _registry(self) -> MetricRegistry:
        return self.registry if self.registry is not None else core.registry()

    def flush(self) -> None:
        payload = self._registry().snapshot()
        payload["written_at"] = time.time()
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")
        os.replace(tmp, self.path)
        self._last_write = time.monotonic()
        self.writes += 1

    def __call__(self, event: Any = None) -> None:
        kind = getattr(event, "kind", None)
        if kind is not None:
            self._track_progress(kind, event)
        force = kind == "sweep_end" or event is None
        if not force and (
            time.monotonic() - self._last_write < self.min_interval
        ):
            return
        self.flush()

    def _track_progress(self, kind: str, event: Any) -> None:
        """Mirror sweep progress into gauges so ``top`` can render it.

        The runner's counters record totals at sweep start; live
        done-so-far state only exists in the event stream, so the
        writer (which sees every event) owns these gauges.
        """
        reg = self._registry()
        if kind == "sweep_start":
            reg.gauge("sweep_progress_total", "Points in the running sweep").set(
                event.total
            )
            reg.gauge("sweep_progress_done", "Points completed so far").set(0)
            reg.gauge(
                "sweep_progress_cached", "Completed points served from cache"
            ).set(0)
        elif kind == "point_done":
            reg.gauge("sweep_progress_done", "Points completed so far").set(
                event.done
            )
            if event.detail == "cached":
                reg.gauge(
                    "sweep_progress_cached",
                    "Completed points served from cache",
                ).inc()
        elif kind == "sweep_end":
            reg.gauge("sweep_progress_done", "Points completed so far").set(
                event.done
            )


def read_snapshot(path: str) -> dict[str, Any] | None:
    """Load a snapshot file; ``None`` when absent or torn mid-rotation."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict) or "metrics" not in data:
        return None
    return data
