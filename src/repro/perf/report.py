"""One-call post-mortem analysis of a traced run.

:func:`analyze` runs every ``repro.perf`` analysis over one event
stream (indexing it once) and returns a :class:`PerfReport` that
renders as a full text report or serializes to a JSON-safe dict.  The
dict form is what the experiment drivers attach to their sweep points:
it round-trips through :meth:`PerfReport.from_json_dict` minus the
critical-path chain (the span objects themselves stay out of JSON).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.observe.tracer import TraceEvent
from repro.perf.counters import (
    CounterGroup,
    Metric,
    compute_counter_groups,
    render_counter_groups,
)
from repro.perf.critpath import (
    Attribution,
    CriticalPath,
    attribute_makespan,
    extract_critical_path,
)
from repro.perf.numa import TrafficMatrix, render_heatmap, traffic_matrix
from repro.perf.spans import TraceIndex, ensure_index


@dataclass
class PerfReport:
    """Everything ``repro.perf`` derives from one traced run."""

    label: str = ""
    makespan: float = 0.0
    measured_time: float = 0.0
    n_events: int = 0
    critical_path: CriticalPath = field(default_factory=CriticalPath)
    attribution: Attribution = field(default_factory=Attribution)
    groups: tuple[CounterGroup, ...] = ()
    matrix: TrafficMatrix = field(default_factory=lambda: TrafficMatrix(0))

    def group(self, name: str) -> CounterGroup:
        for g in self.groups:
            if g.name == name:
                return g
        raise KeyError(f"no counter group {name!r}")

    def summary(self) -> dict[str, float]:
        """Flat scalars for cross-seed aggregation (stats.summarize_map)."""
        out = {
            "makespan": self.makespan,
            "measured_time": self.measured_time,
            "critical_path": self.critical_path.length,
            "parallelism": self.critical_path.parallelism,
            "serial_time": self.critical_path.serial_time,
            "local_fraction": self.matrix.local_fraction,
            "remote_bytes": self.matrix.remote_bytes,
        }
        for bucket, sec in self.attribution.buckets.items():
            out[f"walk:{bucket}"] = sec
        return out

    def to_json_dict(self) -> dict:
        return {
            "label": self.label,
            "makespan": self.makespan,
            "measured_time": self.measured_time,
            "n_events": self.n_events,
            "critical_path": self.critical_path.to_json_dict(),
            "attribution": self.attribution.to_json_dict(),
            "groups": [g.to_json_dict() for g in self.groups],
            "matrix": self.matrix.to_json_dict(),
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "PerfReport":
        cp = d.get("critical_path", {})
        at = d.get("attribution", {})
        return cls(
            label=d.get("label", ""),
            makespan=float(d.get("makespan", 0.0)),
            measured_time=float(d.get("measured_time", 0.0)),
            n_events=int(d.get("n_events", 0)),
            critical_path=CriticalPath(
                length=float(cp.get("length", 0.0)),
                makespan=float(cp.get("makespan", 0.0)),
                serial_time=float(cp.get("serial_time", 0.0)),
                work_time=float(cp.get("work_time", 0.0)),
                n_spans=int(cp.get("n_spans", 0)),
                n_edges=int(cp.get("n_edges", 0)),
                by_kind=dict(cp.get("by_kind", {})),
                elapsed_by_kind=dict(cp.get("elapsed_by_kind", {})),
                n_chain=int(cp.get("chain_spans", 0)),
            ),
            attribution=Attribution(
                buckets=dict(at.get("buckets", {})),
                makespan=float(at.get("makespan", 0.0)),
                n_segments=int(at.get("n_segments", 0)),
            ),
            groups=tuple(
                CounterGroup(
                    name=g["name"],
                    title=g.get("title", ""),
                    metrics=tuple(
                        Metric(m["name"], float(m["value"]), m.get("unit", ""))
                        for m in g.get("metrics", [])
                    ),
                )
                for g in d.get("groups", [])
            ),
            matrix=TrafficMatrix.from_json_dict(
                d.get("matrix", {"n_nodes": 0, "bytes": [], "seconds": []})
            ),
        )

    def render(self, heatmap: bool = True) -> str:
        head = f"Performance report — {self.label or 'run'}"
        parts = [
            head,
            "=" * len(head),
            f"events: {self.n_events}   measured time: "
            f"{self.measured_time:.6g} s",
            "",
            self.critical_path.render(),
            "",
            self.attribution.render(),
            "",
            render_counter_groups(self.groups),
        ]
        if heatmap:
            parts += ["", render_heatmap(self.matrix)]
        return "\n".join(parts)


def analyze(
    events: "Sequence[TraceEvent] | TraceIndex",
    label: str = "",
    measured_time: Optional[float] = None,
    n_pus: Optional[int] = None,
    n_nodes: Optional[int] = None,
) -> PerfReport:
    """Run the full ``repro.perf`` pipeline over one event stream.

    *measured_time* is the experiment's reported processing time;
    defaulted to the trace-witnessed makespan.  *n_pus* / *n_nodes*
    come from the topology and make utilization and matrix sizing
    exact (otherwise both are inferred from the stream).
    """
    raw = None if isinstance(events, TraceIndex) else list(events)
    idx = ensure_index(events if raw is None else raw)
    return PerfReport(
        label=label,
        makespan=idx.makespan,
        measured_time=idx.makespan if measured_time is None else measured_time,
        n_events=idx.n_events,
        critical_path=extract_critical_path(idx),
        attribution=attribute_makespan(idx, raw_events=raw),
        groups=tuple(
            compute_counter_groups(
                raw if raw is not None else idx, n_pus=n_pus, n_nodes=n_nodes
            )
        ),
        matrix=traffic_matrix(idx, n_nodes=n_nodes),
    )
