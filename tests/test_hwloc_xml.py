"""Tests for hwloc XML import (v1 and v2 layouts)."""

import pytest

from repro.topology.hwloc_xml import load_hwloc_xml, parse_hwloc_xml
from repro.topology.objects import ObjType
from repro.topology.tree import TopologyError

# A v1-style export: NUMANode is a tree level, caches use type="Cache"
# with a depth attribute.
V1_XML = """<?xml version="1.0"?>
<topology>
  <object type="Machine" os_index="0">
    <object type="NUMANode" os_index="0" local_memory="34359738368">
      <object type="Socket" os_index="0">
        <object type="Cache" cache_size="20971520" depth="3" cache_linesize="64">
          <object type="Core" os_index="0">
            <object type="PU" os_index="0"/>
            <object type="PU" os_index="1"/>
          </object>
          <object type="Core" os_index="1">
            <object type="PU" os_index="2"/>
            <object type="PU" os_index="3"/>
          </object>
        </object>
      </object>
    </object>
    <object type="NUMANode" os_index="1" local_memory="34359738368">
      <object type="Socket" os_index="1">
        <object type="Cache" cache_size="20971520" depth="3" cache_linesize="64">
          <object type="Core" os_index="2">
            <object type="PU" os_index="4"/>
            <object type="PU" os_index="5"/>
          </object>
          <object type="Core" os_index="3">
            <object type="PU" os_index="6"/>
            <object type="PU" os_index="7"/>
          </object>
        </object>
      </object>
    </object>
  </object>
</topology>
"""

# A v2-style export: NUMANode attached as a leaf memory child of the
# Package; caches use explicit L3Cache/L2Cache types.
V2_XML = """<?xml version="1.0"?>
<topology>
  <object type="Machine" os_index="0">
    <object type="Package" os_index="0">
      <object type="NUMANode" os_index="0" local_memory="17179869184"/>
      <object type="L3Cache" cache_size="8388608" cache_linesize="64">
        <object type="Core" os_index="0">
          <object type="PU" os_index="0"/>
        </object>
        <object type="Core" os_index="1">
          <object type="PU" os_index="1"/>
        </object>
      </object>
    </object>
  </object>
</topology>
"""

# An export with PCI bridges to skip.
SKIP_XML = """<?xml version="1.0"?>
<topology>
  <object type="Machine">
    <object type="Core" os_index="0">
      <object type="PU" os_index="0"/>
    </object>
    <object type="Bridge">
      <object type="PCIDev"/>
    </object>
    <object type="Core" os_index="1">
      <object type="PU" os_index="1"/>
    </object>
  </object>
</topology>
"""


class TestV1:
    def test_structure(self):
        t = parse_hwloc_xml(V1_XML)
        assert t.nb_pus == 8
        assert t.nbobjs_by_type(ObjType.NUMANODE) == 2
        assert t.nbobjs_by_type(ObjType.PACKAGE) == 2
        assert t.nbobjs_by_type(ObjType.L3) == 2
        assert t.nbobjs_by_type(ObjType.CORE) == 4
        assert t.has_hyperthreading()

    def test_balanced_for_mapping(self):
        t = parse_hwloc_xml(V1_XML)
        assert t.arities() == [2, 1, 1, 2, 2]

    def test_attributes(self):
        t = parse_hwloc_xml(V1_XML)
        l3 = t.objects_by_type(ObjType.L3)[0]
        assert l3.cache.size == 20971520
        node = t.objects_by_type(ObjType.NUMANODE)[0]
        assert node.memory.local_bytes == 34359738368

    def test_os_indices(self):
        t = parse_hwloc_xml(V1_XML)
        assert [p.os_index for p in t.pus()] == list(range(8))


class TestV2:
    def test_memory_child_folded_to_level(self):
        t = parse_hwloc_xml(V2_XML)
        assert t.nb_pus == 2
        assert t.nbobjs_by_type(ObjType.NUMANODE) == 1
        # The NUMANode must now contain the cores.
        node = t.objects_by_type(ObjType.NUMANODE)[0]
        assert node.cpuset.weight() == 2

    def test_numa_queries_work(self):
        t = parse_hwloc_xml(V2_XML)
        assert t.numa_node_of(0) is not None

    def test_explicit_cache_types(self):
        t = parse_hwloc_xml(V2_XML)
        assert t.nbobjs_by_type(ObjType.L3) == 1
        assert t.objects_by_type(ObjType.L3)[0].cache.size == 8388608


class TestRobustness:
    def test_io_devices_skipped(self):
        t = parse_hwloc_xml(SKIP_XML)
        assert t.nb_pus == 2
        assert t.nbobjs_by_type(ObjType.GROUP) == 0

    def test_not_xml_rejected(self):
        with pytest.raises(TopologyError):
            parse_hwloc_xml("this is not xml")

    def test_wrong_root_rejected(self):
        with pytest.raises(TopologyError):
            parse_hwloc_xml("<notatopology/>")

    def test_no_machine_rejected(self):
        with pytest.raises(TopologyError):
            parse_hwloc_xml("<topology><object type='Core'/></topology>")

    def test_file_loading(self, tmp_path):
        path = tmp_path / "machine.xml"
        path.write_text(V1_XML)
        t = load_hwloc_xml(path)
        assert t.nb_pus == 8
        assert t.name == "machine"

    def test_cli_resolves_xml(self, tmp_path, capsys):
        from repro.tools import lstopo as lstopo_cli

        path = tmp_path / "host.xml"
        path.write_text(V1_XML)
        assert lstopo_cli.main([str(path), "--summary"]) == 0
        assert "PU: 8" in capsys.readouterr().out

    def test_mapping_on_imported_topology(self):
        from repro.comm import patterns
        from repro.treematch.algorithm import tree_match

        t = parse_hwloc_xml(V1_XML)
        m = patterns.ring(8, volume=10.0)
        result = tree_match(t, m)
        assert result.mapping.bound_fraction() == 1.0


class TestExport:
    def test_roundtrip_v1(self):
        from repro.topology.hwloc_xml import to_hwloc_xml

        t = parse_hwloc_xml(V1_XML)
        t2 = parse_hwloc_xml(to_hwloc_xml(t))
        assert t2.nb_pus == t.nb_pus
        assert t2.arities() == t.arities()
        assert [p.os_index for p in t2.pus()] == [p.os_index for p in t.pus()]

    def test_roundtrip_preserves_attributes(self):
        from repro.topology.hwloc_xml import to_hwloc_xml

        t = parse_hwloc_xml(V1_XML)
        t2 = parse_hwloc_xml(to_hwloc_xml(t))
        assert t2.objects_by_type(ObjType.L3)[0].cache.size == 20971520
        assert t2.objects_by_type(ObjType.NUMANODE)[0].memory.local_bytes > 0

    def test_roundtrip_from_presets(self):
        from repro.topology import presets
        from repro.topology.hwloc_xml import to_hwloc_xml

        for name in ("small-numa", "ht-smp", "paper-smp"):
            t = presets.by_name(name)
            t2 = parse_hwloc_xml(to_hwloc_xml(t))
            assert t2.nb_pus == t.nb_pus
            assert t2.arities() == t.arities()

    def test_save_file(self, tmp_path):
        from repro.topology import presets
        from repro.topology.hwloc_xml import load_hwloc_xml, save_hwloc_xml

        dest = tmp_path / "exported.xml"
        save_hwloc_xml(presets.small_numa(), dest)
        t2 = load_hwloc_xml(dest)
        assert t2.nb_pus == 8

    def test_roundtrip_property(self):
        from hypothesis import given, settings, strategies as st

        from repro.topology.builder import from_spec
        from repro.topology.hwloc_xml import to_hwloc_xml

        @settings(max_examples=15, deadline=None)
        @given(
            nodes=st.integers(min_value=1, max_value=3),
            cores=st.integers(min_value=1, max_value=4),
            pus=st.integers(min_value=1, max_value=2),
        )
        def check(nodes, cores, pus):
            t = from_spec(f"numa:{nodes} package:1 l3:1 core:{cores} pu:{pus}")
            t2 = parse_hwloc_xml(to_hwloc_xml(t))
            assert t2.arities() == t.arities()
            assert [p.os_index for p in t2.pus()] == [p.os_index for p in t.pus()]

        check()
