"""Communication matrices.

A :class:`CommMatrix` is the weighted matrix the paper's Section II
describes: entry ``(i, j)`` is the communication volume (bytes) between
thread *i* and thread *j*.  It is kept symmetric with a zero diagonal —
the convention TreeMatch operates on — and supports the operations the
mapping pipeline needs: permutation, aggregation into groups,
normalization, and file round-trip.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence, Union

import numpy as np

from repro.util.validate import (
    ValidationError,
    check_nonnegative,
    check_square_matrix,
    check_symmetric,
)


class CommMatrix:
    """A symmetric, zero-diagonal, non-negative communication matrix.

    Parameters
    ----------
    data:
        Square array-like of pairwise volumes.  It is symmetrized as
        ``(m + m.T)`` when *symmetrize* is true — the total traffic
        between a pair is what placement cares about, regardless of
        direction — otherwise it must already be symmetric.
    labels:
        Optional per-row labels (e.g. thread names); defaults to
        ``"t0".."tN-1"``.
    """

    def __init__(
        self,
        data: Union[np.ndarray, Sequence[Sequence[float]]],
        labels: Sequence[str] | None = None,
        symmetrize: bool = False,
    ) -> None:
        m = check_square_matrix(data, "communication matrix")
        check_nonnegative(m, "communication matrix")
        if symmetrize:
            m = m + m.T
        else:
            check_symmetric(m, "communication matrix")
        m = m.copy()
        np.fill_diagonal(m, 0.0)
        self._m = m
        n = m.shape[0]
        if labels is None:
            self._labels = tuple(f"t{i}" for i in range(n))
        else:
            if len(labels) != n:
                raise ValidationError(
                    f"got {len(labels)} labels for a matrix of order {n}"
                )
            self._labels = tuple(str(x) for x in labels)

    # -- constructors -------------------------------------------------------

    @classmethod
    def zeros(cls, order: int, labels: Sequence[str] | None = None) -> "CommMatrix":
        """The empty matrix of the given order."""
        if order < 0:
            raise ValidationError(f"order must be >= 0, got {order}")
        return cls(np.zeros((order, order)), labels=labels)

    @classmethod
    def from_edges(
        cls,
        order: int,
        edges: Iterable[tuple[int, int, float]],
        labels: Sequence[str] | None = None,
    ) -> "CommMatrix":
        """Build from ``(i, j, volume)`` triples (accumulated, symmetrized)."""
        m = np.zeros((order, order))
        for i, j, vol in edges:
            if not (0 <= i < order and 0 <= j < order):
                raise ValidationError(f"edge ({i}, {j}) out of range for order {order}")
            if vol < 0:
                raise ValidationError(f"negative volume {vol} on edge ({i}, {j})")
            if i == j:
                continue
            m[i, j] += vol
            m[j, i] += vol
        return cls(m, labels=labels)

    # -- accessors ----------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of communicating entities (matrix dimension)."""
        return self._m.shape[0]

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the underlying matrix."""
        v = self._m.view()
        v.flags.writeable = False
        return v

    def volume(self, i: int, j: int) -> float:
        """Pairwise volume between entities *i* and *j*."""
        return float(self._m[i, j])

    def total_volume(self) -> float:
        """Sum of all pairwise volumes (each pair counted once)."""
        return float(self._m.sum() / 2.0)

    def row_volume(self, i: int) -> float:
        """Total traffic of entity *i* with everyone else."""
        return float(self._m[i].sum())

    def density(self) -> float:
        """Fraction of nonzero off-diagonal pairs."""
        n = self.order
        if n < 2:
            return 0.0
        nonzero = int(np.count_nonzero(self._m)) / 2
        return nonzero / (n * (n - 1) / 2)

    def neighbors(self, i: int) -> list[int]:
        """Indices with nonzero traffic to *i*, sorted by decreasing volume."""
        row = self._m[i]
        idx = np.nonzero(row)[0]
        return sorted((int(j) for j in idx), key=lambda j: (-row[j], j))

    # -- transforms ----------------------------------------------------------

    def normalized(self) -> "CommMatrix":
        """Scale so the max entry is 1 (the zero matrix stays zero)."""
        peak = float(self._m.max()) if self._m.size else 0.0
        if peak == 0.0:
            return CommMatrix(self._m.copy(), labels=self._labels)
        return CommMatrix(self._m / peak, labels=self._labels)

    def permuted(self, perm: Sequence[int]) -> "CommMatrix":
        """Reorder entities: new index k holds old entity ``perm[k]``."""
        p = np.asarray(perm, dtype=np.intp)
        if sorted(p.tolist()) != list(range(self.order)):
            raise ValidationError(f"perm must be a permutation of 0..{self.order - 1}")
        m = self._m[np.ix_(p, p)]
        labels = tuple(self._labels[i] for i in p)
        return CommMatrix(m, labels=labels)

    def extended(self, extra: int, labels: Sequence[str] | None = None) -> "CommMatrix":
        """Append *extra* all-zero rows/columns (for control threads)."""
        if extra < 0:
            raise ValidationError(f"extra must be >= 0, got {extra}")
        n = self.order
        m = np.zeros((n + extra, n + extra))
        m[:n, :n] = self._m
        new_labels = list(self._labels) + [
            (labels[k] if labels is not None else f"ctl{k}") for k in range(extra)
        ]
        return CommMatrix(m, labels=new_labels)

    def aggregated(self, groups: Sequence[Sequence[int]]) -> "CommMatrix":
        """Collapse entity groups into single entities.

        This is the paper's ``AggregateComMatrix``: entry (g, h) of the
        result is the sum of volumes between members of group *g* and
        members of group *h*.  Groups must partition ``0..order-1``.
        """
        seen: set[int] = set()
        for g in groups:
            for i in g:
                if i in seen:
                    raise ValidationError(f"entity {i} appears in two groups")
                seen.add(i)
        if seen != set(range(self.order)):
            missing = sorted(set(range(self.order)) - seen)
            raise ValidationError(f"groups must partition entities; missing {missing}")
        k = len(groups)
        # One indicator-matrix product instead of k² fancy-index sums.
        indicator = np.zeros((k, self.order))
        for gi, g in enumerate(groups):
            indicator[gi, list(g)] = 1.0
        out = indicator @ self._m @ indicator.T
        np.fill_diagonal(out, 0.0)
        labels = tuple("+".join(self._labels[i] for i in g) for g in groups)
        return CommMatrix(out, labels=labels)

    # -- IO -------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write in the TreeMatch text format: order, then the matrix rows."""
        lines = [str(self.order)]
        lines += [" ".join(f"{v:.17g}" for v in row) for row in self._m]
        lines.append("# labels: " + "\t".join(self._labels))
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CommMatrix":
        """Read the format produced by :meth:`save`."""
        text = Path(path).read_text(encoding="utf-8")
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ValidationError(f"empty matrix file {path}")
        order = int(lines[0])
        rows = []
        for ln in lines[1 : 1 + order]:
            rows.append([float(x) for x in ln.split()])
        labels = None
        for ln in lines[1 + order :]:
            if ln.startswith("# labels:"):
                labels = ln[len("# labels:") :].strip().split("\t")
        m = np.asarray(rows)
        if m.shape != (order, order):
            raise ValidationError(
                f"matrix file {path} declares order {order} but has shape {m.shape}"
            )
        return cls(m, labels=labels)

    # -- protocol ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommMatrix):
            return NotImplemented
        return self.order == other.order and np.array_equal(self._m, other._m)

    def __hash__(self) -> int:  # matrices are mutable-ish; identity hash
        return id(self)

    def __repr__(self) -> str:
        return (
            f"<CommMatrix order={self.order} total={self.total_volume():.3g} "
            f"density={self.density():.2f}>"
        )
